"""Viewer-side IBRAVR model: slab textures -> scene graph -> frames.

This is the "object database" of Figure 1 as Visapult builds it: the
amount of data held here is O(n^2) per slab versus the O(n^3) source
volume (footnote 5), which is what lets a desktop viewer stay
interactive.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.ibravr.axis import AxisChoice, best_view_axis
from repro.ibravr.slabs import make_slab_quad, slab_depth_key
from repro.scenegraph.camera import Camera
from repro.scenegraph.geometry import LineSet
from repro.scenegraph.node import Group
from repro.scenegraph.raster import render as raster_render
from repro.scenegraph.texture import Texture2D
from repro.volren.compositing import composite_stack
from repro.volren.renderer import SlabRendering
from repro.volren.tiles import (
    TileGrid,
    assemble_frame,
    slab_view_order,
    tile_content_hash,
)


class IbravrModel:
    """Holds the current set of slab renderings and composes frames.

    ``use_depth_meshes`` enables the quad-mesh extension when the
    renderings carry depth maps. An optional line-set overlay renders
    AMR grid geometry on top (Figure 3).
    """

    def __init__(self, *, use_depth_meshes: bool = False):
        self.use_depth_meshes = use_depth_meshes
        self.root = Group("ibravr-root")
        self._slab_group = Group("slabs")
        self._overlay_group = Group("overlay")
        self.root.add(self._slab_group)
        self.root.add(self._overlay_group)
        self._renderings: List[SlabRendering] = []
        self.updates = 0

    @property
    def current_axis(self) -> Optional[int]:
        """Slab axis of the most recent update, or None before any."""
        if not self._renderings:
            return None
        return self._renderings[0].axis

    @property
    def texture_bytes(self) -> int:
        """Total wire size of textures held (the O(n^2) payload)."""
        return sum(r.texture_bytes for r in self._renderings)

    def update(self, renderings: Sequence[SlabRendering]) -> None:
        """Replace slab textures with a new timestep's renderings."""
        renderings = list(renderings)
        if not renderings:
            raise ValueError("need at least one slab rendering")
        axes = {r.axis for r in renderings}
        if len(axes) != 1:
            raise ValueError(f"mixed slab axes in one update: {axes}")
        self._renderings = sorted(renderings, key=lambda r: r.rank)
        self._slab_group.children = []
        for r in self._renderings:
            texture = Texture2D(r.image)
            depth = r.depth if self.use_depth_meshes else None
            node = make_slab_quad(
                r.slab_lo,
                r.slab_hi,
                r.axis,
                texture,
                depth_map=depth,
                name=f"slab-{r.rank}",
            )
            self._slab_group.add(node)
        self.updates += 1

    def set_overlay(self, segments: np.ndarray, color=(0.4, 1.0, 0.4, 0.9)) -> None:
        """Install AMR grid line geometry over the volume rendering."""
        self._overlay_group.children = []
        if len(segments):
            self._overlay_group.add(LineSet(segments, color, name="amr-grid"))

    def best_axis_for(self, camera: Camera) -> AxisChoice:
        """The axis the viewer would request from the back end."""
        return best_view_axis(camera.forward)

    def needs_axis_switch(self, camera: Camera) -> bool:
        """True when the camera has rotated onto a different best axis."""
        if self.current_axis is None:
            return False
        return self.best_axis_for(camera).axis != self.current_axis

    def render_frame(
        self, camera: Camera, width: int = 256, height: int = 256
    ) -> np.ndarray:
        """Compose the current textures into a frame (premultiplied RGBA)."""
        if not self._renderings:
            raise RuntimeError("no slab renderings received yet")
        return raster_render(self.root, camera, width, height)


class TiledCompositor:
    """Owner-style per-tile depth compositing of slab renderings.

    The Distributed FrameBuffer counterpart of whole-image slab
    compositing: every slab layer is cut into a fixed tile grid, each
    tile's stack is composited independently in slab depth order, and
    the tiles are pasted back into the frame. Because *over* is
    per-pixel and both paths sort by :func:`slab_depth_key`, the
    result is bitwise identical to compositing the whole images.

    Per-tile content hashes from the previous update are kept so the
    compositor doubles as the delta-transmission oracle: ``changed`` /
    ``unchanged`` count how many tiles would need re-sending versus a
    reference after each update.
    """

    def __init__(self, grid: TileGrid):
        self.grid = grid
        self._hashes: Dict[int, bytes] = {}
        self.updates = 0
        #: tiles whose content differed from the previous update
        self.changed = 0
        #: tiles identical to the previous update (delta candidates)
        self.unchanged = 0

    def _ordered_images(
        self, renderings: Sequence[SlabRendering]
    ) -> List[np.ndarray]:
        renderings = list(renderings)
        if not renderings:
            raise ValueError("need at least one slab rendering")
        axes = {r.axis for r in renderings}
        flips = {r.flip for r in renderings}
        if len(axes) != 1 or len(flips) != 1:
            raise ValueError(
                f"mixed slab axes/flips in one update: {axes}/{flips}"
            )
        expected = (self.grid.height, self.grid.width)
        for r in renderings:
            if r.image.shape[:2] != expected:
                raise ValueError(
                    f"slab {r.rank} image {r.image.shape[:2]} != "
                    f"viewport {expected}"
                )
        depths = [
            slab_depth_key(r.slab_lo, r.slab_hi, r.axis)
            for r in renderings
        ]
        order = slab_view_order(depths, flip=renderings[0].flip)
        return [renderings[i].image for i in order]

    def composite_whole(
        self, renderings: Sequence[SlabRendering]
    ) -> np.ndarray:
        """The slab-mode reference: whole-image back-to-front *over*."""
        images = self._ordered_images(renderings)
        return composite_stack(images, front_to_back=False)

    def composite(self, renderings: Sequence[SlabRendering]) -> np.ndarray:
        """Composite per tile and reassemble; updates delta counters."""
        images = self._ordered_images(renderings)
        tiles: Dict[int, np.ndarray] = {}
        for tid in range(self.grid.n_tiles):
            x0, y0, x1, y1 = self.grid.tile_rect(tid)
            crops = [img[y0:y1, x0:x1] for img in images]
            tile = composite_stack(crops, front_to_back=False)
            digest = tile_content_hash(tile)
            if self._hashes.get(tid) == digest:
                self.unchanged += 1
            else:
                self.changed += 1
            self._hashes[tid] = digest
            tiles[tid] = tile
        self.updates += 1
        return assemble_frame(self.grid, tiles)
