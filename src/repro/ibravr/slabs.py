"""Slab geometry: base quads and offset quad meshes.

Maps the back end's slab decomposition into the viewer's textured
geometry. Corner ordering matches the texture layout produced by
:func:`repro.volren.raycast.render_slab` (rows/cols over the two
non-view axes), so a texture lands on its quad without flips.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.scenegraph.geometry import QuadMesh, TexturedQuad
from repro.scenegraph.texture import Texture2D

#: image-plane axes for each slab axis (must match raycast._PLANE_AXES)
_PLANE_AXES = {0: (1, 2), 1: (0, 2), 2: (0, 1)}


def slab_base_quad(
    slab_lo: Tuple[float, float, float],
    slab_hi: Tuple[float, float, float],
    axis: int,
) -> np.ndarray:
    """Corners (4, 3) of the quad at the slab's center plane.

    "A single quadrilateral representing the center of the slab is
    used as the base geometry" (section 3.3). Corner i carries texture
    coordinate [(0,0), (1,0), (1,1), (0,1)][i] with u across columns
    (second plane axis) and v across rows (first plane axis).
    """
    if axis not in (0, 1, 2):
        raise ValueError(f"axis must be 0, 1 or 2, got {axis}")
    lo = np.asarray(slab_lo, dtype=np.float64)
    hi = np.asarray(slab_hi, dtype=np.float64)
    if lo.shape != (3,) or hi.shape != (3,):
        raise ValueError("slab_lo/slab_hi must be 3-vectors")
    if np.any(hi <= lo):
        raise ValueError(f"empty slab lo={slab_lo} hi={slab_hi}")
    center = (lo[axis] + hi[axis]) / 2.0
    rows_ax, cols_ax = _PLANE_AXES[axis]

    def corner(row_val: float, col_val: float) -> np.ndarray:
        p = np.empty(3)
        p[axis] = center
        p[rows_ax] = row_val
        p[cols_ax] = col_val
        return p

    return np.array(
        [
            corner(lo[rows_ax], lo[cols_ax]),  # uv (0, 0)
            corner(lo[rows_ax], hi[cols_ax]),  # uv (1, 0)
            corner(hi[rows_ax], hi[cols_ax]),  # uv (1, 1)
            corner(hi[rows_ax], lo[cols_ax]),  # uv (0, 1)
        ]
    )


def slab_depth_key(
    slab_lo: Tuple[float, float, float],
    slab_hi: Tuple[float, float, float],
    axis: int,
) -> float:
    """Composite-order depth of a slab: its center along the view axis.

    Both the whole-image and the per-tile composite paths sort slabs
    by this key (via :func:`repro.volren.tiles.slab_view_order`), so
    the two paths replay the identical Porter-Duff order and stay
    bitwise equal.
    """
    if axis not in (0, 1, 2):
        raise ValueError(f"axis must be 0, 1 or 2, got {axis}")
    lo = np.asarray(slab_lo, dtype=np.float64)
    hi = np.asarray(slab_hi, dtype=np.float64)
    if lo.shape != (3,) or hi.shape != (3,):
        raise ValueError("slab_lo/slab_hi must be 3-vectors")
    if np.any(hi <= lo):
        raise ValueError(f"empty slab lo={slab_lo} hi={slab_hi}")
    return float((lo[axis] + hi[axis]) / 2.0)


def slab_quad_mesh(
    slab_lo: Tuple[float, float, float],
    slab_hi: Tuple[float, float, float],
    axis: int,
    texture: Texture2D,
    depth_map: np.ndarray,
    *,
    mesh_resolution: int = 16,
    name: str = "",
) -> QuadMesh:
    """The quad-mesh depth extension: displace the base quad by the
    renderer's opacity-weighted depth map, adding "a depth component to
    each of the IBR images" (section 3.3).
    """
    corners = slab_base_quad(slab_lo, slab_hi, axis)
    lo = np.asarray(slab_lo, dtype=np.float64)
    hi = np.asarray(slab_hi, dtype=np.float64)
    thickness = float(hi[axis] - lo[axis])
    normal = np.zeros(3)
    normal[axis] = 1.0
    depth = np.asarray(depth_map, dtype=np.float64)
    if depth.ndim != 2:
        raise ValueError("depth_map must be 2-D")
    # Downsample the offset map to the mesh resolution.
    r_idx = np.linspace(0, depth.shape[0] - 1, mesh_resolution).round().astype(int)
    c_idx = np.linspace(0, depth.shape[1] - 1, mesh_resolution).round().astype(int)
    offsets = depth[np.ix_(r_idx, c_idx)]
    return QuadMesh.from_offsets(
        corners, offsets, normal, texture, amplitude=thickness, name=name
    )


def make_slab_quad(
    slab_lo: Tuple[float, float, float],
    slab_hi: Tuple[float, float, float],
    axis: int,
    texture: Texture2D,
    *,
    depth_map: Optional[np.ndarray] = None,
    name: str = "",
):
    """Build the geometry node for one slab texture.

    A plain :class:`TexturedQuad` without a depth map, the quad-mesh
    extension with one.
    """
    if depth_map is None:
        return TexturedQuad(slab_base_quad(slab_lo, slab_hi, axis), texture, name)
    return slab_quad_mesh(slab_lo, slab_hi, axis, texture, depth_map, name=name)
