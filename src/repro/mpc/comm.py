"""A small MPI-flavoured communicator over threads."""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple


class Communicator:
    """Rank-addressed point-to-point and collective operations.

    Messages are (source, tag, payload) tuples delivered through
    per-rank mailboxes; ``recv`` can match a specific source/tag or
    accept any. Collectives (barrier, bcast, gather) follow MPI
    semantics: every rank must call them, in the same order.
    """

    ANY_SOURCE = -1
    ANY_TAG = -1

    def __init__(self, size: int):
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self._size = size
        self._mailboxes: List["queue.Queue"] = [
            queue.Queue() for _ in range(size)
        ]
        #: unmatched messages a rank has popped but not consumed
        self._stashes: List[List[Tuple[int, int, Any]]] = [
            [] for _ in range(size)
        ]
        self._barrier = threading.Barrier(size)
        self._bcast_slot: Dict[int, Any] = {}
        self._gather_slots: Dict[int, Dict[int, Any]] = {}
        self._coll_lock = threading.Lock()

    @property
    def size(self) -> int:
        """Number of ranks."""
        return self._size

    def _check_rank(self, rank: int, name: str) -> None:
        if not 0 <= rank < self._size:
            raise ValueError(f"{name} {rank} outside [0, {self._size})")

    # -- point to point ------------------------------------------------------
    def send(self, dest: int, payload: Any, *, source: int, tag: int = 0) -> None:
        """Deliver ``payload`` to ``dest``'s mailbox (non-blocking)."""
        self._check_rank(dest, "dest")
        self._check_rank(source, "source")
        self._mailboxes[dest].put((source, tag, payload))

    def recv(
        self,
        *,
        rank: int,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: Optional[float] = None,
    ) -> Tuple[int, int, Any]:
        """Blocking receive matching (source, tag); returns the triple.

        Non-matching messages are stashed and re-examined on later
        calls, preserving arrival order per (source, tag).
        """
        self._check_rank(rank, "rank")
        stash = self._stashes[rank]
        for i, msg in enumerate(stash):
            if self._matches(msg, source, tag):
                return stash.pop(i)
        while True:
            msg = self._mailboxes[rank].get(timeout=timeout)
            if self._matches(msg, source, tag):
                return msg
            stash.append(msg)

    @staticmethod
    def _matches(msg: Tuple[int, int, Any], source: int, tag: int) -> bool:
        s, t, _ = msg
        return (source == Communicator.ANY_SOURCE or s == source) and (
            tag == Communicator.ANY_TAG or t == tag
        )

    # -- collectives ---------------------------------------------------------
    def barrier(self) -> None:
        """Block until every rank arrives."""
        self._barrier.wait()

    def bcast(self, value: Any, *, root: int, rank: int) -> Any:
        """Broadcast ``value`` from ``root`` to all ranks."""
        self._check_rank(root, "root")
        self._check_rank(rank, "rank")
        if rank == root:
            self._bcast_slot[root] = value
        self._barrier.wait()
        result = self._bcast_slot[root]
        self._barrier.wait()
        return result

    def gather(self, value: Any, *, root: int, rank: int) -> Optional[List[Any]]:
        """Gather every rank's value at ``root`` (None elsewhere)."""
        self._check_rank(root, "root")
        self._check_rank(rank, "rank")
        with self._coll_lock:
            self._gather_slots.setdefault(root, {})[rank] = value
        self._barrier.wait()
        result = None
        if rank == root:
            slot = self._gather_slots[root]
            result = [slot[r] for r in range(self._size)]
        self._barrier.wait()
        if rank == root:
            self._gather_slots.pop(root, None)
        return result


def run_spmd(
    size: int,
    fn: Callable[[Communicator, int], Any],
    *,
    timeout: Optional[float] = 60.0,
) -> List[Any]:
    """Run ``fn(comm, rank)`` on ``size`` threads; return rank results.

    Any rank's exception is re-raised in the caller after all threads
    have been joined, so failures surface instead of deadlocking.
    """
    comm = Communicator(size)
    results: List[Any] = [None] * size
    errors: List[BaseException] = []

    def wrapper(rank: int) -> None:
        try:
            results[rank] = fn(comm, rank)
        except BaseException as exc:  # noqa: BLE001 - reraised below
            errors.append(exc)
            comm._barrier.abort()

    threads = [
        threading.Thread(target=wrapper, args=(r,), name=f"rank-{r}")
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
    alive = [t.name for t in threads if t.is_alive()]
    if errors:
        raise errors[0]
    if alive:
        raise TimeoutError(f"ranks did not finish: {alive}")
    return results
