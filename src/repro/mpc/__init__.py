"""Thread-backed message passing: the live pipeline's MPI stand-in.

The paper's back end "is implemented using MPI as the multiprocessing
and IPC framework", extended with a detached pthread reader per PE and
a pair of SysV semaphores guarding a double-buffered shared block
(Appendix B). This package provides those primitives for the live
(threaded) pipeline:

- :class:`~repro.mpc.comm.Communicator` -- rank-addressed send/recv,
  barrier, broadcast, gather over threads;
- :func:`~repro.mpc.comm.run_spmd` -- launch one thread per rank;
- :class:`~repro.mpc.pairs.SemaphorePair` and
  :class:`~repro.mpc.pairs.DoubleBuffer` -- Appendix B's reader/render
  handshake and even/odd frame buffer.
"""

from repro.mpc.comm import Communicator, run_spmd
from repro.mpc.pairs import DoubleBuffer, SemaphorePair

__all__ = ["Communicator", "run_spmd", "DoubleBuffer", "SemaphorePair"]
