"""Appendix B's primitives: the semaphore pair and the double buffer."""

from __future__ import annotations

import threading
from typing import Any, Optional


class SemaphorePair:
    """The two SysV semaphores of Appendix B.

    Semaphore A is "an execution barrier from the perspective of the
    reader thread"; semaphore B the same for the render process. The
    render process posts A to hand the reader a command and waits on B
    for completion; the reader waits on A and posts B.
    """

    def __init__(self):
        self._a = threading.Semaphore(0)
        self._b = threading.Semaphore(0)
        #: shared control word: which timestep to read, or EXIT
        self.command: Optional[int] = None

    EXIT = -1

    # -- render-process side ----------------------------------------------
    def request(self, timestep: int) -> None:
        """Ask the reader to load ``timestep`` (sem_post A)."""
        if timestep < 0:
            raise ValueError(f"timestep must be >= 0, got {timestep}")
        self.command = timestep
        self._a.release()

    def request_exit(self) -> None:
        """Ask the reader to terminate."""
        self.command = self.EXIT
        self._a.release()

    def wait_data(self, timeout: Optional[float] = None) -> bool:
        """Wait until the reader posts completion (sem_wait B)."""
        return self._b.acquire(timeout=timeout)

    # -- reader-thread side ---------------------------------------------------
    def wait_command(self, timeout: Optional[float] = None) -> Optional[int]:
        """Wait for a command (sem_wait A); None on timeout."""
        if not self._a.acquire(timeout=timeout):
            return None
        return self.command

    def post_data(self) -> None:
        """Signal that the requested data is resident (sem_post B)."""
        self._b.release()


class DoubleBuffer:
    """The even/odd shared memory block of Appendix B.

    "This memory is considered to be double-buffered: its size is
    twice that of a single time step's worth of data, and the reader
    thread will use one half of the buffer for writing into, while the
    render process reads from the other half. Access control is
    implicit as a function of the time step using an even-odd
    decomposition."
    """

    def __init__(self):
        self._slots: list = [None, None]
        self._stamped: list = [None, None]

    def write(self, timestep: int, data: Any) -> None:
        """Reader side: deposit a timestep's data in its parity slot."""
        if timestep < 0:
            raise ValueError(f"timestep must be >= 0, got {timestep}")
        slot = timestep % 2
        self._slots[slot] = data
        self._stamped[slot] = timestep

    def read(self, timestep: int) -> Any:
        """Render side: fetch a timestep's data from its parity slot.

        Raises if the slot holds a different timestep -- that would
        mean the semaphore protocol was violated and the reader
        overwrote data still being rendered.
        """
        if timestep < 0:
            raise ValueError(f"timestep must be >= 0, got {timestep}")
        slot = timestep % 2
        if self._stamped[slot] != timestep:
            raise RuntimeError(
                f"double-buffer violation: slot {slot} holds timestep "
                f"{self._stamped[slot]!r}, wanted {timestep}"
            )
        return self._slots[slot]
