"""The public facade: one import for the whole reproduction.

Everything a script needs to define, run and fault-test an experiment
lives here under stable names::

    from repro import api

    result = api.run_experiment(
        api.ExperimentConfig(campaign="lan_e4500", overlapped=True)
    )
    print(result.summary())

or, with fault injection::

    plan = api.FaultPlan.from_json_file("examples/plans/sc99_flaky.json")
    config = api.Campaign.sc99_showfloor().with_changes(
        faults=plan, policy=api.RequestPolicy.aggressive()
    )
    result = api.run_experiment(config, sanitize=True)

``Campaign`` is :class:`~repro.core.campaign.CampaignConfig` under its
public name; :func:`run_experiment` accepts either an
:class:`~repro.config.ExperimentConfig` (the JSON-facing form) or a
concrete ``Campaign``. The deeper modules remain importable, but
anything re-exported here is covered by the public-API test and will
not move without a deprecation cycle.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.analysis import CheckFinding, CheckResult, run_check
from repro.backend.sim import SimBackEnd
from repro.config import (
    BackendConfig,
    ExperimentConfig,
    FlowClassConfig,
    NetworkConfig,
    SiteLink,
    SiteSpec,
    StripeConfig,
    TileConfig,
    TopologyConfig,
    named_topology,
    topology_names,
)
from repro.core.campaign import (
    CampaignConfig as Campaign,
    build_session,
    campaign_names,
    named_campaign,
    run_campaign,
)
from repro.core.report import CampaignResult
from repro.dpss.client import DpssClient
from repro.dpss.health import HealthTracker
from repro.dpss.stripe import StripeMap, XorCodec
from repro.faults import FaultPlan, RequestPolicy, load_drill
from repro.service import (
    AdmissionPolicy,
    AdmissionVerdict,
    CacheConfig,
    ServiceCampaign,
    ServiceMetrics,
    ServiceResult,
    ShardCampaign,
    ShardMetrics,
    ShardResult,
    SiteMetrics,
    ViewerProfile,
    WorkloadSpec,
    result_payload,
    run_service_campaign,
    run_shard_campaign,
)
from repro.simcore import FlowClass, FlowClassPool
from repro.viewer.sim import SimViewer
from repro.volren.tiles import TileGrid

__all__ = [
    "AdmissionPolicy",
    "AdmissionVerdict",
    "BackendConfig",
    "CacheConfig",
    "Campaign",
    "CampaignResult",
    "CheckFinding",
    "CheckResult",
    "DpssClient",
    "ExperimentConfig",
    "FaultPlan",
    "FlowClass",
    "FlowClassConfig",
    "FlowClassPool",
    "HealthTracker",
    "NetworkConfig",
    "RequestPolicy",
    "ServiceCampaign",
    "ServiceMetrics",
    "ServiceResult",
    "ShardCampaign",
    "ShardMetrics",
    "ShardResult",
    "SimBackEnd",
    "SimViewer",
    "SiteLink",
    "SiteMetrics",
    "SiteSpec",
    "StripeConfig",
    "StripeMap",
    "TileConfig",
    "TileGrid",
    "TopologyConfig",
    "ViewerProfile",
    "WorkloadSpec",
    "XorCodec",
    "build_session",
    "campaign_names",
    "load_drill",
    "named_campaign",
    "named_topology",
    "result_payload",
    "run_campaign",
    "run_check",
    "run_experiment",
    "run_service_campaign",
    "run_shard_campaign",
    "topology_names",
]


def run_experiment(
    config: Union[ExperimentConfig, Campaign, ServiceCampaign, ShardCampaign],
    *,
    sanitize: Optional[bool] = None,
    ulm_path: Optional[str] = None,
) -> Union[CampaignResult, ShardResult]:
    """Run one experiment end to end and reduce the results.

    ``config`` may be an :class:`ExperimentConfig` (resolved through
    the named-campaign registry, honouring its ``sanitize`` flag), a
    concrete :class:`Campaign`, a :class:`ServiceCampaign` (returning
    a :class:`ServiceResult`), or a :class:`ShardCampaign` (returning
    a :class:`ShardResult`). ``sanitize`` overrides the config's
    setting when given; ``ulm_path`` writes the ULM event log.
    """
    if isinstance(config, ExperimentConfig):
        if sanitize is None:
            sanitize = config.sanitize
        config = config.to_campaign_config()
    return run_campaign(
        config, sanitize=bool(sanitize), ulm_path=ulm_path
    )
