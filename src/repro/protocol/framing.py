"""Length-prefixed framing for the Visapult wire protocol.

Every frame is an 12-byte header (magic, message type, body length)
followed by the body. Works over anything with ``sendall``/``recv``
(sockets) via the module functions.
"""

from __future__ import annotations

import struct
from enum import IntEnum
from typing import Tuple

MAGIC = 0x56504C54  # "VPLT"
_HEADER = struct.Struct("!III")  # magic, type, body length

#: refuse absurd frames rather than allocating gigabytes on a bad peer
MAX_BODY = 256 * 1024 * 1024


class FrameError(ConnectionError):
    """Raised on malformed frames or truncated streams."""


class MsgType(IntEnum):
    """Wire message types."""

    CONFIG = 1
    LIGHT = 2
    HEAVY = 3
    AXIS_FEEDBACK = 4
    # vis: allow[VIS213] BYE is a payload-less control frame; receive
    # loops terminate on it before decode_message is reached.
    BYE = 5
    TILE = 6
    STRIPE = 7


def write_message(sock, msg_type: MsgType, body: bytes) -> None:
    """Send one framed message."""
    if len(body) > MAX_BODY:
        raise FrameError(f"body of {len(body)} bytes exceeds {MAX_BODY}")
    header = _HEADER.pack(MAGIC, int(msg_type), len(body))
    sock.sendall(header + body)


def recv_exact(sock, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`FrameError`."""
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise FrameError(
                f"connection closed with {remaining} of {n} bytes unread"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_message(sock) -> Tuple[MsgType, bytes]:
    """Receive one framed message; returns (type, body)."""
    header = recv_exact(sock, _HEADER.size)
    magic, msg_type, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameError(f"bad magic {magic:#x}")
    if length > MAX_BODY:
        raise FrameError(f"frame of {length} bytes exceeds {MAX_BODY}")
    try:
        msg_type = MsgType(msg_type)
    except ValueError:
        raise FrameError(f"unknown message type {msg_type}") from None
    body = recv_exact(sock, length) if length else b""
    return msg_type, body
