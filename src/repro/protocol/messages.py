"""Typed wire payloads with binary encoding.

The light payload carries "texture size, bytes per pixel, and
geometric information used to place the texture in a 3D scene ... on
the order of 256 bytes" (Table 1); the heavy payload carries "raw
pixel data, as well as any geometric data" -- here the RGBA8 texture,
an optional float32 offset map (the quad-mesh extension) and optional
AMR grid line segments.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple, Union

import numpy as np

from repro.protocol.framing import MAX_BODY, MsgType
from repro.volren.tiles import TILE_HASH_BYTES, TileGrid

if TYPE_CHECKING:  # pragma: no cover - avoids importing the dpss stack
    from repro.dpss.stripe import StripeMap

_CONFIG = struct.Struct("!IIIIII")
_LIGHT = struct.Struct("!IIIIB?6d")
_HEAVY_HEAD = struct.Struct("!IIIIIII")
_AXIS = struct.Struct("!IB?")
_TILE_HEAD = struct.Struct("!IIIIIIIB")
_STRIPE_HEAD = struct.Struct("!IIHHBI")


@dataclass(frozen=True)
class ConfigMessage:
    """The initial config exchange (Figure 18: "Exchange Config Data")."""

    n_pes: int
    n_timesteps: int
    shape: Tuple[int, int, int]

    def encode(self) -> bytes:
        return _CONFIG.pack(
            self.n_pes, self.n_timesteps, *self.shape, 0
        )

    @classmethod
    def decode(cls, body: bytes) -> "ConfigMessage":
        n_pes, n_steps, sx, sy, sz, _pad = _CONFIG.unpack(body)
        return cls(n_pes=n_pes, n_timesteps=n_steps, shape=(sx, sy, sz))


@dataclass(frozen=True)
class LightPayload:
    """Visualization metadata for one slab texture."""

    rank: int
    frame: int
    tex_height: int
    tex_width: int
    axis: int
    flip: bool
    slab_lo: Tuple[float, float, float]
    slab_hi: Tuple[float, float, float]

    def encode(self) -> bytes:
        return _LIGHT.pack(
            self.rank,
            self.frame,
            self.tex_height,
            self.tex_width,
            self.axis,
            self.flip,
            *self.slab_lo,
            *self.slab_hi,
        )

    @classmethod
    def decode(cls, body: bytes) -> "LightPayload":
        vals = _LIGHT.unpack(body)
        return cls(
            rank=vals[0],
            frame=vals[1],
            tex_height=vals[2],
            tex_width=vals[3],
            axis=vals[4],
            flip=vals[5],
            slab_lo=(vals[6], vals[7], vals[8]),
            slab_hi=(vals[9], vals[10], vals[11]),
        )


@dataclass(frozen=True)
class HeavyPayload:
    """The texture itself, plus optional depth map and grid geometry."""

    rank: int
    frame: int
    #: RGBA8 texture (H, W, 4) uint8
    texture: np.ndarray
    #: optional float32 (H, W) offset map for the quad-mesh extension
    depth: Optional[np.ndarray] = None
    #: optional float32 (N, 2, 3) AMR grid line segments
    grid: Optional[np.ndarray] = None

    def __post_init__(self):
        tex = self.texture
        if tex.dtype != np.uint8 or tex.ndim != 3 or tex.shape[2] != 4:
            raise ValueError(
                f"texture must be uint8 (H, W, 4), got {tex.dtype} "
                f"{tex.shape}"
            )
        if self.depth is not None and self.depth.shape != tex.shape[:2]:
            raise ValueError("depth map must match texture dimensions")
        if self.grid is not None and (
            self.grid.ndim != 3 or self.grid.shape[1:] != (2, 3)
        ):
            raise ValueError("grid must be (N, 2, 3)")

    def encode(self) -> bytes:
        h, w = self.texture.shape[:2]
        depth = (
            np.ascontiguousarray(self.depth, dtype=np.float32)
            if self.depth is not None
            else None
        )
        grid = (
            np.ascontiguousarray(self.grid, dtype=np.float32)
            if self.grid is not None
            else None
        )
        head = _HEAVY_HEAD.pack(
            self.rank,
            self.frame,
            h,
            w,
            1 if depth is not None else 0,
            grid.shape[0] if grid is not None else 0,
            0,
        )
        parts = [head, np.ascontiguousarray(self.texture).tobytes()]
        # Floats cross the wire big-endian, like the struct fields.
        if depth is not None:
            parts.append(depth.astype(">f4").tobytes())
        if grid is not None:
            parts.append(grid.astype(">f4").tobytes())
        return b"".join(parts)

    @classmethod
    def decode(cls, body: bytes) -> "HeavyPayload":
        head_size = _HEAVY_HEAD.size
        rank, frame, h, w, has_depth, n_grid, _ = _HEAVY_HEAD.unpack(
            body[:head_size]
        )
        offset = head_size
        tex_bytes = h * w * 4
        # Validate in Python-int arithmetic before handing sizes to
        # numpy: a hostile header can request more bytes than ssize_t
        # holds, which frombuffer reports as OverflowError, not
        # ValueError.
        need = (
            head_size + tex_bytes
            + (tex_bytes if has_depth else 0)
            + n_grid * 24
        )
        if need > MAX_BODY:
            raise ValueError(
                f"heavy payload header promises {need} bytes, over the "
                f"{MAX_BODY}-byte frame limit"
            )
        if len(body) < need:
            raise ValueError(
                f"heavy payload truncated: header promises {need} "
                f"bytes, got {len(body)}"
            )
        texture = np.frombuffer(
            body, dtype=np.uint8, count=tex_bytes, offset=offset
        ).reshape(h, w, 4).copy()
        offset += tex_bytes
        depth = None
        if has_depth:
            n = h * w
            depth = np.frombuffer(
                body, dtype=">f4", count=n, offset=offset
            ).astype(np.float32).reshape(h, w)
            offset += n * 4
        grid = None
        if n_grid:
            n = n_grid * 6
            grid = np.frombuffer(
                body, dtype=">f4", count=n, offset=offset
            ).astype(np.float32).reshape(n_grid, 2, 3)
        return cls(rank=rank, frame=frame, texture=texture, depth=depth,
                   grid=grid)


#: flag bit: the payload is a delta *reference* -- no pixels follow the
#: content hash because the viewer already holds this tile version.
TILE_FLAG_REF = 0x01

_TILE_FLAGS_KNOWN = TILE_FLAG_REF

#: bytes of per-tile wire overhead (header plus content hash)
TILE_WIRE_OVERHEAD = _TILE_HEAD.size + TILE_HASH_BYTES


@dataclass(frozen=True)
class TilePayload:
    """One owner-composited screen tile, full or delta-referenced.

    The tile refactor replaces whole per-slab heavy payloads with
    per-tile messages: ``texture`` carries the RGBA8 pixels of a
    *changed* tile, while an unchanged tile travels as a *reference*
    (``texture is None``) -- just the header and ``content_hash`` the
    viewer uses to re-display the version it already holds.
    """

    rank: int
    frame: int
    tile_id: int
    #: top-left pixel of the tile in the viewport
    x0: int
    y0: int
    #: tile extent in pixels
    height: int
    width: int
    #: ``TILE_HASH_BYTES`` content digest (see ``tile_content_hash``)
    content_hash: bytes
    #: RGBA8 (height, width, 4) pixels, or None for a reference
    texture: Optional[np.ndarray] = None

    def __post_init__(self):
        for name in ("rank", "frame", "tile_id", "x0", "y0"):
            val = getattr(self, name)
            if not 0 <= val <= 0xFFFFFFFF:
                raise ValueError(f"{name} must fit in uint32, got {val}")
        for name in ("height", "width"):
            val = getattr(self, name)
            if not 1 <= val <= 0xFFFFFFFF:
                raise ValueError(
                    f"{name} must be a positive uint32, got {val}"
                )
        if len(self.content_hash) != TILE_HASH_BYTES:
            raise ValueError(
                f"content_hash must be {TILE_HASH_BYTES} bytes, got "
                f"{len(self.content_hash)}"
            )
        tex = self.texture
        if tex is not None and (
            tex.dtype != np.uint8
            or tex.shape != (self.height, self.width, 4)
        ):
            raise ValueError(
                f"texture must be uint8 ({self.height}, {self.width}, 4), "
                f"got {tex.dtype} {tex.shape}"
            )

    @property
    def is_reference(self) -> bool:
        """True when this payload carries no pixels (delta reference)."""
        return self.texture is None

    def encode(self) -> bytes:
        flags = TILE_FLAG_REF if self.texture is None else 0
        head = _TILE_HEAD.pack(
            self.rank,
            self.frame,
            self.tile_id,
            self.x0,
            self.y0,
            self.height,
            self.width,
            flags,
        )
        parts = [head, self.content_hash]
        if self.texture is not None:
            parts.append(np.ascontiguousarray(self.texture).tobytes())
        return b"".join(parts)

    @classmethod
    def decode(
        cls, body: bytes, *, grid: Optional[TileGrid] = None
    ) -> "TilePayload":
        head_size = _TILE_HEAD.size
        rank, frame, tile_id, x0, y0, h, w, flags = _TILE_HEAD.unpack(
            body[:head_size]
        )
        if flags & ~_TILE_FLAGS_KNOWN:
            raise ValueError(f"unknown tile flags 0x{flags:02x}")
        if h < 1 or w < 1:
            raise ValueError(f"tile extent must be positive, got {h}x{w}")
        is_ref = bool(flags & TILE_FLAG_REF)
        # Size the body in Python-int arithmetic before touching numpy,
        # mirroring the HeavyPayload hardening: a hostile header can
        # promise more pixels than ssize_t holds.
        need = head_size + TILE_HASH_BYTES + (0 if is_ref else h * w * 4)
        if need > MAX_BODY:
            raise ValueError(
                f"tile payload header promises {need} bytes, over the "
                f"{MAX_BODY}-byte frame limit"
            )
        if len(body) < need:
            raise ValueError(
                f"tile payload truncated: header promises {need} bytes, "
                f"got {len(body)}"
            )
        if grid is not None:
            if tile_id >= grid.n_tiles:
                raise ValueError(
                    f"tile_id {tile_id} out of grid range "
                    f"[0, {grid.n_tiles})"
                )
            gx0, gy0, gx1, gy1 = grid.tile_rect(tile_id)
            if (x0, y0, h, w) != (gx0, gy0, gy1 - gy0, gx1 - gx0):
                raise ValueError(
                    f"tile {tile_id} rect ({x0}, {y0}, {h}x{w}) does not "
                    f"match grid rect ({gx0}, {gy0}, "
                    f"{gy1 - gy0}x{gx1 - gx0})"
                )
        offset = head_size
        content_hash = bytes(body[offset:offset + TILE_HASH_BYTES])
        offset += TILE_HASH_BYTES
        texture = None
        if not is_ref:
            texture = np.frombuffer(
                body, dtype=np.uint8, count=h * w * 4, offset=offset
            ).reshape(h, w, 4).copy()
        return cls(
            rank=rank,
            frame=frame,
            tile_id=tile_id,
            x0=x0,
            y0=y0,
            height=h,
            width=w,
            content_hash=content_hash,
            texture=texture,
        )


#: flag bit: the payload is a stripe's *parity* block, not data.
STRIPE_FLAG_PARITY = 0x01

_STRIPE_FLAGS_KNOWN = STRIPE_FLAG_PARITY


@dataclass(frozen=True)
class StripePayload:
    """One parity-striped DPSS block (data or parity) on the wire.

    ``block_id`` is the DPSS block id -- data blocks use the dataset's
    logical id space, parity blocks the ids above it (see
    :meth:`~repro.dpss.stripe.StripeMap.parity_block_id`).
    ``stripe_index`` names the stripe the block belongs to and
    ``n_data``/``n_parity`` the stripe geometry, so a receiver can
    detect a block routed into the wrong stripe before XOR folds bad
    bytes into a reconstruction.
    """

    block_id: int
    stripe_index: int
    n_data: int
    n_parity: int
    payload: bytes
    is_parity: bool = False

    def __post_init__(self):
        for name in ("block_id", "stripe_index"):
            val = getattr(self, name)
            if not 0 <= val <= 0xFFFFFFFF:
                raise ValueError(f"{name} must fit in uint32, got {val}")
        if not 2 <= self.n_data <= 0xFFFF:
            raise ValueError(
                f"n_data must be a uint16 >= 2, got {self.n_data}"
            )
        if self.n_parity != 1:
            raise ValueError(
                f"XOR stripes carry exactly 1 parity block, got "
                f"n_parity={self.n_parity}"
            )
        if not self.payload:
            raise ValueError("stripe block payload must be non-empty")
        if len(self.payload) > 0xFFFFFFFF:
            raise ValueError(
                f"payload of {len(self.payload)} bytes overflows the "
                f"uint32 length field"
            )
        if not self.is_parity and self.block_id // self.n_data != (
            self.stripe_index
        ):
            raise ValueError(
                f"data block {self.block_id} belongs to stripe "
                f"{self.block_id // self.n_data}, not {self.stripe_index}"
            )

    def encode(self) -> bytes:
        flags = STRIPE_FLAG_PARITY if self.is_parity else 0
        head = _STRIPE_HEAD.pack(
            self.block_id,
            self.stripe_index,
            self.n_data,
            self.n_parity,
            flags,
            len(self.payload),
        )
        return head + self.payload

    @classmethod
    def decode(
        cls, body: bytes, *, stripe_map: Optional["StripeMap"] = None
    ) -> "StripePayload":
        head_size = _STRIPE_HEAD.size
        block_id, stripe, n_data, n_parity, flags, length = (
            _STRIPE_HEAD.unpack(body[:head_size])
        )
        if flags & ~_STRIPE_FLAGS_KNOWN:
            raise ValueError(f"unknown stripe flags 0x{flags:02x}")
        if n_data < 2:
            raise ValueError(f"n_data must be >= 2, got {n_data}")
        if n_parity != 1:
            raise ValueError(
                f"XOR stripes carry exactly 1 parity block, got "
                f"n_parity={n_parity}"
            )
        if length < 1:
            raise ValueError("stripe block payload must be non-empty")
        is_parity = bool(flags & STRIPE_FLAG_PARITY)
        if not is_parity and block_id // n_data != stripe:
            raise ValueError(
                f"data block {block_id} belongs to stripe "
                f"{block_id // n_data}, not {stripe}"
            )
        # Size the body in Python-int arithmetic before slicing,
        # mirroring the HeavyPayload/TilePayload hardening.
        need = head_size + length
        if need > MAX_BODY:
            raise ValueError(
                f"stripe payload header promises {need} bytes, over the "
                f"{MAX_BODY}-byte frame limit"
            )
        if len(body) < need:
            raise ValueError(
                f"stripe payload truncated: header promises {need} "
                f"bytes, got {len(body)}"
            )
        if stripe_map is not None:
            if (n_data, n_parity) != (
                stripe_map.n_data, stripe_map.n_parity
            ):
                raise ValueError(
                    f"stripe geometry {n_data}+{n_parity} does not match "
                    f"the map's {stripe_map.n_data}+{stripe_map.n_parity}"
                )
            if stripe >= stripe_map.n_stripes:
                raise ValueError(
                    f"stripe_index {stripe} out of range "
                    f"[0, {stripe_map.n_stripes})"
                )
            if is_parity:
                expect = stripe_map.parity_block_id(stripe)
                if block_id != expect:
                    raise ValueError(
                        f"parity block id {block_id} is not stripe "
                        f"{stripe}'s parity id {expect}"
                    )
                expect_len = int(stripe_map.parity_bytes(stripe))
            else:
                if block_id >= stripe_map.dataset.n_blocks:
                    raise ValueError(
                        f"data block {block_id} out of dataset range "
                        f"[0, {stripe_map.dataset.n_blocks})"
                    )
                expect_len = int(stripe_map.block_bytes(block_id))
            if length != expect_len:
                raise ValueError(
                    f"block {block_id} carries {length} bytes, the map "
                    f"says {expect_len}"
                )
        return cls(
            block_id=block_id,
            stripe_index=stripe,
            n_data=n_data,
            n_parity=n_parity,
            payload=bytes(body[head_size:need]),
            is_parity=is_parity,
        )


@dataclass(frozen=True)
class AxisFeedback:
    """Viewer -> back end: the best view axis for upcoming frames."""

    frame: int
    axis: int
    flip: bool

    def encode(self) -> bytes:
        return _AXIS.pack(self.frame, self.axis, self.flip)

    @classmethod
    def decode(cls, body: bytes) -> "AxisFeedback":
        frame, axis, flip = _AXIS.unpack(body)
        return cls(frame=frame, axis=axis, flip=flip)


Message = Union[
    ConfigMessage, LightPayload, HeavyPayload, TilePayload, StripePayload,
    AxisFeedback,
]

_TYPE_OF = {
    ConfigMessage: MsgType.CONFIG,
    LightPayload: MsgType.LIGHT,
    HeavyPayload: MsgType.HEAVY,
    TilePayload: MsgType.TILE,
    StripePayload: MsgType.STRIPE,
    AxisFeedback: MsgType.AXIS_FEEDBACK,
}
_CLASS_OF = {v: k for k, v in _TYPE_OF.items()}


def encode_message(msg: Message) -> Tuple[MsgType, bytes]:
    """Serialize a typed message to (wire type, body)."""
    try:
        msg_type = _TYPE_OF[type(msg)]
    except KeyError:
        raise TypeError(f"unsupported message {type(msg).__name__}") from None
    return msg_type, msg.encode()


def decode_message(msg_type: MsgType, body: bytes) -> Message:
    """Deserialize a wire frame into its typed message."""
    try:
        cls = _CLASS_OF[MsgType(msg_type)]
    except (KeyError, ValueError):
        raise ValueError(f"no decoder for message type {msg_type}") from None
    return cls.decode(body)
