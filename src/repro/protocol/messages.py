"""Typed wire payloads with binary encoding.

The light payload carries "texture size, bytes per pixel, and
geometric information used to place the texture in a 3D scene ... on
the order of 256 bytes" (Table 1); the heavy payload carries "raw
pixel data, as well as any geometric data" -- here the RGBA8 texture,
an optional float32 offset map (the quad-mesh extension) and optional
AMR grid line segments.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.protocol.framing import MsgType

_CONFIG = struct.Struct("!IIIIII")
_LIGHT = struct.Struct("!IIIIB?6d")
_HEAVY_HEAD = struct.Struct("!IIIIIII")
_AXIS = struct.Struct("!IB?")


@dataclass(frozen=True)
class ConfigMessage:
    """The initial config exchange (Figure 18: "Exchange Config Data")."""

    n_pes: int
    n_timesteps: int
    shape: Tuple[int, int, int]

    def encode(self) -> bytes:
        return _CONFIG.pack(
            self.n_pes, self.n_timesteps, *self.shape, 0
        )

    @classmethod
    def decode(cls, body: bytes) -> "ConfigMessage":
        n_pes, n_steps, sx, sy, sz, _pad = _CONFIG.unpack(body)
        return cls(n_pes=n_pes, n_timesteps=n_steps, shape=(sx, sy, sz))


@dataclass(frozen=True)
class LightPayload:
    """Visualization metadata for one slab texture."""

    rank: int
    frame: int
    tex_height: int
    tex_width: int
    axis: int
    flip: bool
    slab_lo: Tuple[float, float, float]
    slab_hi: Tuple[float, float, float]

    def encode(self) -> bytes:
        return _LIGHT.pack(
            self.rank,
            self.frame,
            self.tex_height,
            self.tex_width,
            self.axis,
            self.flip,
            *self.slab_lo,
            *self.slab_hi,
        )

    @classmethod
    def decode(cls, body: bytes) -> "LightPayload":
        vals = _LIGHT.unpack(body)
        return cls(
            rank=vals[0],
            frame=vals[1],
            tex_height=vals[2],
            tex_width=vals[3],
            axis=vals[4],
            flip=vals[5],
            slab_lo=(vals[6], vals[7], vals[8]),
            slab_hi=(vals[9], vals[10], vals[11]),
        )


@dataclass(frozen=True)
class HeavyPayload:
    """The texture itself, plus optional depth map and grid geometry."""

    rank: int
    frame: int
    #: RGBA8 texture (H, W, 4) uint8
    texture: np.ndarray
    #: optional float32 (H, W) offset map for the quad-mesh extension
    depth: Optional[np.ndarray] = None
    #: optional float32 (N, 2, 3) AMR grid line segments
    grid: Optional[np.ndarray] = None

    def __post_init__(self):
        tex = self.texture
        if tex.dtype != np.uint8 or tex.ndim != 3 or tex.shape[2] != 4:
            raise ValueError(
                f"texture must be uint8 (H, W, 4), got {tex.dtype} "
                f"{tex.shape}"
            )
        if self.depth is not None and self.depth.shape != tex.shape[:2]:
            raise ValueError("depth map must match texture dimensions")
        if self.grid is not None and (
            self.grid.ndim != 3 or self.grid.shape[1:] != (2, 3)
        ):
            raise ValueError("grid must be (N, 2, 3)")

    def encode(self) -> bytes:
        h, w = self.texture.shape[:2]
        depth = (
            np.ascontiguousarray(self.depth, dtype=np.float32)
            if self.depth is not None
            else None
        )
        grid = (
            np.ascontiguousarray(self.grid, dtype=np.float32)
            if self.grid is not None
            else None
        )
        head = _HEAVY_HEAD.pack(
            self.rank,
            self.frame,
            h,
            w,
            1 if depth is not None else 0,
            grid.shape[0] if grid is not None else 0,
            0,
        )
        parts = [head, np.ascontiguousarray(self.texture).tobytes()]
        # Floats cross the wire big-endian, like the struct fields.
        if depth is not None:
            parts.append(depth.astype(">f4").tobytes())
        if grid is not None:
            parts.append(grid.astype(">f4").tobytes())
        return b"".join(parts)

    @classmethod
    def decode(cls, body: bytes) -> "HeavyPayload":
        head_size = _HEAVY_HEAD.size
        rank, frame, h, w, has_depth, n_grid, _ = _HEAVY_HEAD.unpack(
            body[:head_size]
        )
        offset = head_size
        tex_bytes = h * w * 4
        # Validate in Python-int arithmetic before handing sizes to
        # numpy: a hostile header can request more bytes than ssize_t
        # holds, which frombuffer reports as OverflowError, not
        # ValueError.
        need = (
            head_size + tex_bytes
            + (tex_bytes if has_depth else 0)
            + n_grid * 24
        )
        if len(body) < need:
            raise ValueError(
                f"heavy payload truncated: header promises {need} "
                f"bytes, got {len(body)}"
            )
        texture = np.frombuffer(
            body, dtype=np.uint8, count=tex_bytes, offset=offset
        ).reshape(h, w, 4).copy()
        offset += tex_bytes
        depth = None
        if has_depth:
            n = h * w
            depth = np.frombuffer(
                body, dtype=">f4", count=n, offset=offset
            ).astype(np.float32).reshape(h, w)
            offset += n * 4
        grid = None
        if n_grid:
            n = n_grid * 6
            grid = np.frombuffer(
                body, dtype=">f4", count=n, offset=offset
            ).astype(np.float32).reshape(n_grid, 2, 3)
        return cls(rank=rank, frame=frame, texture=texture, depth=depth,
                   grid=grid)


@dataclass(frozen=True)
class AxisFeedback:
    """Viewer -> back end: the best view axis for upcoming frames."""

    frame: int
    axis: int
    flip: bool

    def encode(self) -> bytes:
        return _AXIS.pack(self.frame, self.axis, self.flip)

    @classmethod
    def decode(cls, body: bytes) -> "AxisFeedback":
        frame, axis, flip = _AXIS.unpack(body)
        return cls(frame=frame, axis=axis, flip=flip)


Message = Union[ConfigMessage, LightPayload, HeavyPayload, AxisFeedback]

_TYPE_OF = {
    ConfigMessage: MsgType.CONFIG,
    LightPayload: MsgType.LIGHT,
    HeavyPayload: MsgType.HEAVY,
    AxisFeedback: MsgType.AXIS_FEEDBACK,
}
_CLASS_OF = {v: k for k, v in _TYPE_OF.items()}


def encode_message(msg: Message) -> Tuple[MsgType, bytes]:
    """Serialize a typed message to (wire type, body)."""
    try:
        msg_type = _TYPE_OF[type(msg)]
    except KeyError:
        raise TypeError(f"unsupported message {type(msg).__name__}") from None
    return msg_type, msg.encode()


def decode_message(msg_type: MsgType, body: bytes) -> Message:
    """Deserialize a wire frame into its typed message."""
    try:
        cls = _CLASS_OF[MsgType(msg_type)]
    except (KeyError, ValueError):
        raise ValueError(f"no decoder for message type {msg_type}") from None
    return cls.decode(body)
