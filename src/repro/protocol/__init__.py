"""Visapult's custom TCP wire protocol.

Section 3.4: the viewer's I/O threads receive data "over multiple
simultaneous network connections (implemented with a custom TCP-based
protocol over striped sockets)". Each payload is either *light*
(visualization metadata, ~256 bytes: texture size, bytes per pixel,
geometric placement) or *heavy* (the texture pixels plus optional
geometry such as AMR grid lines and the quad-mesh offset map).

- :mod:`~repro.protocol.framing` -- length-prefixed message framing
  over byte streams;
- :mod:`~repro.protocol.messages` -- typed payloads with binary
  encode/decode.
"""

from repro.protocol.framing import (
    FrameError,
    MsgType,
    read_message,
    recv_exact,
    write_message,
)
from repro.protocol.messages import (
    STRIPE_FLAG_PARITY,
    TILE_FLAG_REF,
    TILE_WIRE_OVERHEAD,
    AxisFeedback,
    ConfigMessage,
    HeavyPayload,
    LightPayload,
    StripePayload,
    TilePayload,
    decode_message,
    encode_message,
)

__all__ = [
    "FrameError",
    "MsgType",
    "read_message",
    "recv_exact",
    "write_message",
    "AxisFeedback",
    "ConfigMessage",
    "HeavyPayload",
    "LightPayload",
    "StripePayload",
    "TilePayload",
    "STRIPE_FLAG_PARITY",
    "TILE_FLAG_REF",
    "TILE_WIRE_OVERHEAD",
    "decode_message",
    "encode_message",
]
