"""The fault injector: replays a FaultPlan against a live session.

One simulation process walks the plan's inject/clear transitions in
time order and mutates the session's fluid resources and DPSS state:

- ``server_crash``   -- the server's ``online`` flag drops and its
  disk pool and NIC collapse to (effectively) zero, stalling anything
  in flight until the window closes;
- ``server_slowdown`` -- the disk pool runs at ``factor`` capacity;
- ``link_flap``      -- the link's capacity collapses to zero;
- ``loss_spike``     -- the link runs at ``factor`` of its capacity
  (the goodput TCP realises under that loss rate);
- ``master_stall``   -- lookups wait until the stall window ends.

Overlapping windows compose multiplicatively per resource, and every
transition is stamped as a ``FAULT_INJECT``/``FAULT_CLEAR`` NetLogger
event so NLV timelines show exactly when the world misbehaved. The
injector draws no randomness and schedules only its own timeouts: a
plan with no events changes nothing at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from repro.faults.plan import FaultEvent, FaultPlan
from repro.netlogger.events import Tags
from repro.netlogger.logger import NetLogger

if TYPE_CHECKING:  # pragma: no cover
    from repro.dpss.master import DpssMaster
    from repro.netlogger.daemon import NetLogDaemon
    from repro.netsim.topology import Network
    from repro.simcore.fluid import FluidResource
    from repro.simcore.process import Process

#: capacity floor for "down" resources (bytes/s); strictly positive so
#: the max-min allocator never divides through a zero-capacity column
_DOWN_CAPACITY = 1e-3


class FaultInjector:
    """Applies a :class:`~repro.faults.plan.FaultPlan` to a session.

    ``link_aliases`` maps symbolic link names in the plan (``"wan"``)
    to the concrete :class:`~repro.netsim.link.Link` names of this
    session, so one drill file works across campaigns.
    """

    def __init__(
        self,
        network: "Network",
        master: Optional["DpssMaster"],
        plan: FaultPlan,
        *,
        daemon: Optional["NetLogDaemon"] = None,
        link_aliases: Optional[Dict[str, str]] = None,
    ):
        self.network = network
        self.master = master
        self.plan = plan
        self.link_aliases = dict(link_aliases or {})
        self.logger = NetLogger(
            "faultd",
            "faults",
            clock=lambda: network.env.now,
            daemon=daemon,
        )
        #: resource name -> capacity before any fault touched it
        self._base: Dict[str, float] = {}
        self._resources: Dict[str, "FluidResource"] = {}
        #: resource name -> {event index: capacity multiplier}
        self._scales: Dict[str, Dict[int, float]] = {}
        #: server name -> indices of crash windows currently open
        self._crashed: Dict[str, Set[int]] = {}
        self._proc: Optional["Process"] = None
        self.injected = 0
        self.cleared = 0
        #: ``(action, kind, target)`` callbacks fired on every
        #: transition; the health tracker subscribes here so crash and
        #: flap observations bias subsequent redundant reads. Empty by
        #: default -- attaching nothing changes nothing.
        self.observers: List[Callable[[str, str, str], None]] = []

    # -- lifecycle -----------------------------------------------------
    def start(self) -> Optional["Process"]:
        """Launch the injection process; no-op for an empty plan."""
        if self._proc is None and self.plan.events:
            self._proc = self.network.env.process(self._run())
        return self._proc

    def _run(self):
        env = self.network.env
        # Interleave inject/clear transitions in time order; clears
        # sort before injects at the same instant so a back-to-back
        # window hands over cleanly.
        transitions: List[Tuple[float, int, int, str, FaultEvent]] = []
        for i, ev in enumerate(self.plan.events):
            transitions.append((ev.at, 1, i, "inject", ev))
            transitions.append((ev.at + ev.duration, 0, i, "clear", ev))
        transitions.sort(key=lambda t: (t[0], t[1], t[2]))
        for at, _order, i, action, ev in transitions:
            if at > env.now:
                yield env.timeout(at - env.now)
            if action == "inject":
                self._inject(i, ev)
            else:
                self._clear(i, ev)

    # -- transitions ---------------------------------------------------
    def _inject(self, i: int, ev: FaultEvent) -> None:
        kind = ev.kind
        data: Dict[str, object] = {"kind": kind, "duration": ev.duration}
        if kind == "server_crash":
            server = self._server(ev.server)
            data["target"] = server.name
            self._crashed.setdefault(server.name, set()).add(i)
            server.online = False
            self._scale(i, server.disks, 0.0)
            self._scale(i, server.host.nic, 0.0)
        elif kind == "server_slowdown":
            server = self._server(ev.server)
            data["target"] = server.name
            data["factor"] = ev.factor
            self._scale(i, server.disks, ev.factor)
        elif kind == "link_flap":
            resource = self._link_resource(ev.link)
            data["target"] = resource.name
            self._scale(i, resource, 0.0)
        elif kind == "loss_spike":
            resource = self._link_resource(ev.link)
            data["target"] = resource.name
            data["factor"] = ev.factor
            self._scale(i, resource, ev.factor)
        elif kind == "master_stall":
            master = self._require_master()
            data["target"] = master.name
            master.stalled_until = max(
                master.stalled_until, self.network.env.now + ev.duration
            )
        self.injected += 1
        self.logger.log(Tags.FAULT_INJECT, **data)
        self._notify("inject", kind, data)

    def _clear(self, i: int, ev: FaultEvent) -> None:
        kind = ev.kind
        data: Dict[str, object] = {"kind": kind}
        if kind == "server_crash":
            server = self._server(ev.server)
            data["target"] = server.name
            open_windows = self._crashed.get(server.name, set())
            open_windows.discard(i)
            if not open_windows:
                server.online = True
            self._unscale(i, server.disks)
            self._unscale(i, server.host.nic)
        elif kind == "server_slowdown":
            server = self._server(ev.server)
            data["target"] = server.name
            self._unscale(i, server.disks)
        elif kind in ("link_flap", "loss_spike"):
            resource = self._link_resource(ev.link)
            data["target"] = resource.name
            self._unscale(i, resource)
        elif kind == "master_stall":
            data["target"] = self._require_master().name
        self.cleared += 1
        self.logger.log(Tags.FAULT_CLEAR, **data)
        self._notify("clear", kind, data)

    def _notify(self, action: str, kind: str, data: Dict[str, object]) -> None:
        target = data.get("target")
        if target is None:
            return
        for observer in self.observers:
            observer(action, kind, str(target))

    # -- capacity bookkeeping ------------------------------------------
    def _scale(self, i: int, resource: "FluidResource", factor: float) -> None:
        name = resource.name
        if name not in self._base:
            self._base[name] = resource.capacity
            self._resources[name] = resource
        self._scales.setdefault(name, {})[i] = factor
        self._apply(name)

    def _unscale(self, i: int, resource: "FluidResource") -> None:
        scales = self._scales.get(resource.name)
        if scales is not None:
            scales.pop(i, None)
        self._apply(resource.name)

    def _apply(self, name: str) -> None:
        base = self._base[name]
        effective = base
        for factor in self._scales.get(name, {}).values():
            effective *= factor
        self.network.sched.set_capacity(
            self._resources[name], max(effective, _DOWN_CAPACITY)
        )

    # -- target resolution ---------------------------------------------
    def _server(self, name: str):
        master = self._require_master()
        if name not in master.servers:
            raise KeyError(
                f"fault plan targets unknown server {name!r}; "
                f"known: {sorted(master.servers)}"
            )
        return master.servers[name]

    def _require_master(self) -> "DpssMaster":
        if self.master is None:
            raise ValueError("this fault plan needs a DPSS master to target")
        return self.master

    def _link_resource(self, name: str) -> "FluidResource":
        resolved = self.link_aliases.get(name, name)
        if resolved not in self.network.links:
            raise KeyError(
                f"fault plan targets unknown link {name!r}; "
                f"known: {sorted(self.network.links)}"
            )
        return self.network.links[resolved].resource
