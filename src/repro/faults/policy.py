"""Request policies: timeouts, bounded retries, hedged reads.

A :class:`RequestPolicy` parameterises how
:meth:`~repro.dpss.client.DpssClient.read` behaves when a block server
stops answering: how long to wait before declaring an attempt dead,
how many retries to spend, how the backoff between attempts grows,
and whether to *hedge* -- issue a duplicate read to a replica server
when the primary is slow, keeping whichever answer lands first.

The policy itself is frozen configuration; any randomness (backoff
jitter) is drawn from a generator the caller supplies, so the same
seed always reproduces the same retry schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.util.validation import check_non_negative, check_positive


class ReadTimeout(ConnectionError):
    """One read attempt exceeded the policy's per-attempt timeout."""

    #: True when the deadline tore down a hedge that was still in
    #: flight: the relaunch replaces the abandoned hedge, so the retry
    #: accounting must not count it again.
    hedge_abandoned: bool = False


@dataclass(frozen=True)
class RequestPolicy:
    """Client-side fault tolerance for DPSS block reads.

    ``timeout`` bounds each attempt (request + transfer); ``None``
    waits forever. After a timeout or a refused request the client
    sleeps ``backoff_base * backoff_factor**attempt`` seconds (capped
    at ``backoff_max``, stretched by up to ``jitter`` fraction drawn
    uniformly) and retries, up to ``max_retries`` times. With
    ``hedge_after`` set, an attempt that is still in flight after that
    many seconds fires a duplicate read at a replica server and the
    first completion wins -- the classic tail-latency hedge.
    """

    timeout: Optional[float] = 30.0
    max_retries: int = 3
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 4.0
    jitter: float = 0.25
    hedge_after: Optional[float] = None

    def __post_init__(self):
        if self.timeout is not None:
            check_positive("timeout", self.timeout)
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        check_positive("backoff_base", self.backoff_base)
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        check_positive("backoff_max", self.backoff_max)
        check_non_negative("jitter", self.jitter)
        if self.hedge_after is not None:
            check_positive("hedge_after", self.hedge_after)

    def backoff_delay(
        self, attempt: int, rng: Optional[np.random.Generator] = None
    ) -> float:
        """Seconds to sleep before retry number ``attempt + 1``.

        Deterministic for a given ``(attempt, rng state)``; with no
        generator the jitter term is omitted entirely.
        """
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        delay = min(
            self.backoff_base * self.backoff_factor ** attempt,
            self.backoff_max,
        )
        if self.jitter > 0 and rng is not None:
            delay *= 1.0 + self.jitter * float(rng.random())
        return delay

    def backoff_schedule(
        self, rng: Optional[np.random.Generator] = None
    ) -> List[float]:
        """The full sequence of backoff delays this policy would use."""
        return [self.backoff_delay(i, rng) for i in range(self.max_retries)]

    @classmethod
    def aggressive(cls) -> "RequestPolicy":
        """Short timeouts, quick retries, hedging on: drill settings."""
        return cls(
            timeout=2.0,
            max_retries=3,
            backoff_base=0.1,
            backoff_factor=2.0,
            backoff_max=1.0,
            jitter=0.25,
            hedge_after=1.0,
        )
