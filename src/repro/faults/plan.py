"""Fault plans: deterministic schedules of injected failures.

A :class:`FaultPlan` is an immutable, time-sorted schedule of fault
events -- server crashes and slowdowns, link flaps, loss spikes, and
master stalls -- that the :class:`~repro.faults.injector.FaultInjector`
replays against a simulated session. Plans are plain data: they can be
round-tripped through JSON (``--faults plan.json`` on the CLI) and
carry no randomness of their own, so a given (plan, seed) pair always
produces a bit-identical event stream.

The event vocabulary mirrors what the paper's WAN testbeds actually
did to Visapult: DPSS block servers dropped out or ran hot (section
3.5's commodity hardware), NTON/SciNet segments flapped and carried
competing traffic (section 4.4), and TCP collapsed under loss
(section 7's "wide area network behaviors observed during testing").
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, ClassVar, Dict, Iterable, List, Tuple, Type, Union

from repro.util.validation import check_non_negative, check_positive


def _check_window(at: float, duration: float) -> None:
    check_non_negative("at", at)
    check_positive("duration", duration)


def _check_factor(factor: float) -> None:
    if not 0.0 < factor <= 1.0:
        raise ValueError(f"factor must be in (0, 1], got {factor}")


@dataclass(frozen=True)
class ServerCrash:
    """A DPSS block server goes dark for ``duration`` seconds.

    The server refuses new reads (``online`` drops) and anything in
    flight against its disks or NIC stalls until the window closes --
    "the DPSS stripes without replication, so losing a server makes a
    stripe's blocks unreachable until it returns" (unless the dataset
    carries replicas and the master re-balances).
    """

    at: float
    duration: float
    server: str
    kind: ClassVar[str] = "server_crash"

    def __post_init__(self):
        _check_window(self.at, self.duration)


@dataclass(frozen=True)
class ServerSlowdown:
    """A server's disk pool degrades to ``factor`` of its bandwidth.

    Models a failing disk or a busy co-tenant on the commodity block
    server; reads still complete, just slower.
    """

    at: float
    duration: float
    server: str
    factor: float = 0.25
    kind: ClassVar[str] = "server_slowdown"

    def __post_init__(self):
        _check_window(self.at, self.duration)
        _check_factor(self.factor)


@dataclass(frozen=True)
class LinkFlap:
    """A network link drops to (effectively) zero capacity.

    ``link`` names a :class:`~repro.netsim.link.Link`; the injector
    also understands the alias ``"wan"`` for a campaign's WAN segment.
    """

    at: float
    duration: float
    link: str
    kind: ClassVar[str] = "link_flap"

    def __post_init__(self):
        _check_window(self.at, self.duration)


@dataclass(frozen=True)
class LossSpike:
    """Packet loss collapses a link's usable throughput to ``factor``.

    The fluid model carries goodput, not packets, so a loss episode is
    expressed as the throughput multiplier TCP would realise under
    that loss rate -- section 7's observation that "TCP performance
    over the WAN" was the limiting factor.
    """

    at: float
    duration: float
    link: str
    factor: float = 0.3
    kind: ClassVar[str] = "loss_spike"

    def __post_init__(self):
        _check_window(self.at, self.duration)
        _check_factor(self.factor)


@dataclass(frozen=True)
class MasterStall:
    """The DPSS master stops answering lookups until the window ends.

    Open/lookup requests issued during the stall wait for the master
    to come back; established block streams are unaffected (Figure 7
    separates the control path from the data paths).
    """

    at: float
    duration: float
    kind: ClassVar[str] = "master_stall"

    def __post_init__(self):
        _check_window(self.at, self.duration)


FaultEvent = Union[ServerCrash, ServerSlowdown, LinkFlap, LossSpike, MasterStall]

_KINDS: Dict[str, Type[Any]] = {
    cls.kind: cls
    for cls in (ServerCrash, ServerSlowdown, LinkFlap, LossSpike, MasterStall)
}


def event_from_dict(data: Dict[str, Any]) -> FaultEvent:
    """Build one fault event from its JSON dictionary form."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    if kind not in _KINDS:
        raise ValueError(
            f"unknown fault kind {kind!r}; expected one of {sorted(_KINDS)}"
        )
    return _KINDS[kind](**payload)


def event_to_dict(event: FaultEvent) -> Dict[str, Any]:
    """Serialise one fault event to its JSON dictionary form."""
    out: Dict[str, Any] = {"kind": event.kind}
    out.update(asdict(event))
    return out


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-ordered schedule of fault events."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self):
        ordered = tuple(sorted(self.events, key=lambda ev: ev.at))
        object.__setattr__(self, "events", ordered)

    @classmethod
    def empty(cls) -> "FaultPlan":
        """A plan that injects nothing (bit-identical to no plan)."""
        return cls()

    @classmethod
    def of(cls, events: Iterable[FaultEvent]) -> "FaultPlan":
        """A plan from any iterable of fault events."""
        return cls(events=tuple(events))

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def horizon(self) -> float:
        """Time at which the last fault window closes."""
        return max((ev.at + ev.duration for ev in self.events), default=0.0)

    # -- JSON ----------------------------------------------------------
    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from JSON: a list of events or ``{"events": [...]}``."""
        data = json.loads(text)
        if isinstance(data, dict):
            data = data.get("events", [])
        if not isinstance(data, list):
            raise ValueError("fault plan JSON must be a list or {'events': []}")
        return cls.of(event_from_dict(item) for item in data)

    @classmethod
    def from_json_file(cls, path: str) -> "FaultPlan":
        """Load a plan from a JSON file."""
        with open(path) as f:
            return cls.from_json(f.read())

    def to_json(self, *, indent: int = 2) -> str:
        """Serialise the plan as a JSON ``{"events": [...]}`` document."""
        return json.dumps(
            {"events": [event_to_dict(ev) for ev in self.events]},
            indent=indent,
        )

    def targets(self) -> List[str]:
        """Distinct server/link names the plan touches (sorted)."""
        names = set()
        for ev in self.events:
            name = getattr(ev, "server", None) or getattr(ev, "link", None)
            if name:
                names.add(name)
        return sorted(names)
