"""Deterministic fault injection for Visapult campaign replays.

The paper ran Visapult over live WANs -- NTON, ESnet, the SC99 show
floor -- where block servers dropped out, links flapped, and TCP
collapsed under loss. This package recreates those conditions *on
purpose*: a :class:`FaultPlan` schedules failures against the
simulated session, a :class:`FaultInjector` replays them on the sim
clock, and a :class:`RequestPolicy` gives the DPSS client the
timeout/retry/hedging machinery to ride them out.

Everything is seeded and replayable: the same (plan, seed) pair yields
a bit-identical NetLogger event stream, and an empty plan is
bit-identical to running without the subsystem at all.

A *drill* file bundles a plan with the campaign context it was tuned
for (``examples/plans/sc99_flaky.json``)::

    {
      "campaign": "sc99_showfloor",
      "scaled": true,
      "seed": 1,
      "policy": "aggressive",
      "events": [ {"kind": "server_crash", "at": 1.0, ...}, ... ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultEvent,
    FaultPlan,
    LinkFlap,
    LossSpike,
    MasterStall,
    ServerCrash,
    ServerSlowdown,
    event_from_dict,
    event_to_dict,
)
from repro.faults.policy import ReadTimeout, RequestPolicy

__all__ = [
    "FaultDrill",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "LinkFlap",
    "LossSpike",
    "MasterStall",
    "ReadTimeout",
    "RequestPolicy",
    "ServerCrash",
    "ServerSlowdown",
    "event_from_dict",
    "event_to_dict",
    "load_drill",
    "policy_from_spec",
]


@dataclass(frozen=True)
class FaultDrill:
    """A fault plan plus the campaign context it was tuned against.

    Fields other than ``plan`` are optional overrides the CLI applies
    when the user does not specify them explicitly.
    """

    plan: FaultPlan
    campaign: Optional[str] = None
    scaled: bool = False
    overlapped: bool = False
    policy: Optional[RequestPolicy] = None
    seed: Optional[int] = None


def policy_from_spec(
    spec: Union[None, str, Dict[str, Any], RequestPolicy],
) -> Optional[RequestPolicy]:
    """Build a policy from JSON-ish input.

    Accepts ``None``, an existing policy, the named presets
    ``"default"``/``"aggressive"``, or a dict of
    :class:`RequestPolicy` keyword arguments.
    """
    if spec is None or isinstance(spec, RequestPolicy):
        return spec
    if isinstance(spec, str):
        if spec == "default":
            return RequestPolicy()
        if spec == "aggressive":
            return RequestPolicy.aggressive()
        raise ValueError(
            f"unknown policy preset {spec!r}; expected 'default' or 'aggressive'"
        )
    if isinstance(spec, dict):
        return RequestPolicy(**spec)
    raise TypeError(f"cannot build a RequestPolicy from {type(spec).__name__}")


def load_drill(path: str) -> FaultDrill:
    """Load a drill file: a fault plan plus optional campaign context.

    The file may be a bare event list (plan only), or an object with
    an ``events`` list plus any of ``campaign``, ``scaled``,
    ``overlapped``, ``policy``, ``seed``.
    """
    with open(path) as f:
        data = json.loads(f.read())
    if isinstance(data, list):
        return FaultDrill(plan=FaultPlan.of(event_from_dict(e) for e in data))
    if not isinstance(data, dict):
        raise ValueError("fault drill JSON must be a list or object")
    plan = FaultPlan.of(event_from_dict(e) for e in data.get("events", []))
    return FaultDrill(
        plan=plan,
        campaign=data.get("campaign"),
        scaled=bool(data.get("scaled", False)),
        overlapped=bool(data.get("overlapped", False)),
        policy=policy_from_spec(data.get("policy")),
        seed=data.get("seed"),
    )
