"""The corridor map: sites, resources and the paths between them."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.platforms import PlatformSpec, WanSpec


@dataclass(frozen=True)
class Site:
    """A participating laboratory or facility."""

    name: str
    description: str = ""


@dataclass(frozen=True)
class ComputeResource:
    """A back end platform available at a site."""

    name: str
    site: str
    platform: PlatformSpec
    max_pes: int

    def __post_init__(self):
        if self.max_pes < 1:
            raise ValueError(f"max_pes must be >= 1, got {self.max_pes}")


@dataclass(frozen=True)
class DataCacheResource:
    """A DPSS deployment at a site, with the datasets it holds."""

    name: str
    site: str
    datasets: Tuple[str, ...] = ()

    def holds(self, dataset: str) -> bool:
        return dataset in self.datasets


@dataclass(frozen=True)
class NetworkPath:
    """A WAN path joining two sites (symmetric)."""

    site_a: str
    site_b: str
    wan: WanSpec

    def joins(self, a: str, b: str) -> bool:
        return {self.site_a, self.site_b} == {a, b}


class CorridorMap:
    """Registry of everything a corridor session could use."""

    def __init__(self):
        self._sites: Dict[str, Site] = {}
        self._compute: Dict[str, ComputeResource] = {}
        self._caches: Dict[str, DataCacheResource] = {}
        self._paths: List[NetworkPath] = []

    # -- registration ------------------------------------------------------
    def add_site(self, site: Site) -> Site:
        if site.name in self._sites:
            raise ValueError(f"duplicate site {site.name!r}")
        self._sites[site.name] = site
        return site

    def add_compute(self, resource: ComputeResource) -> ComputeResource:
        self._require_site(resource.site)
        if resource.name in self._compute:
            raise ValueError(f"duplicate compute resource {resource.name!r}")
        self._compute[resource.name] = resource
        return resource

    def add_cache(self, cache: DataCacheResource) -> DataCacheResource:
        self._require_site(cache.site)
        if cache.name in self._caches:
            raise ValueError(f"duplicate cache {cache.name!r}")
        self._caches[cache.name] = cache
        return cache

    def add_path(self, path: NetworkPath) -> NetworkPath:
        self._require_site(path.site_a)
        self._require_site(path.site_b)
        if path.site_a == path.site_b:
            raise ValueError("a path must join two distinct sites")
        self._paths.append(path)
        return path

    def _require_site(self, name: str) -> None:
        if name not in self._sites:
            raise KeyError(f"unknown site {name!r}")

    # -- queries --------------------------------------------------------------
    @property
    def sites(self) -> List[Site]:
        return list(self._sites.values())

    @property
    def compute_resources(self) -> List[ComputeResource]:
        return list(self._compute.values())

    def caches_holding(self, dataset: str) -> List[DataCacheResource]:
        """Caches that already hold a dataset."""
        return [c for c in self._caches.values() if c.holds(dataset)]

    def path_between(self, a: str, b: str) -> Optional[NetworkPath]:
        """The (single-hop) WAN path joining two sites, if any.

        Same-site traffic needs no WAN; callers treat ``None`` for
        ``a == b`` as a local gigabit fabric.
        """
        if a == b:
            return None
        for path in self._paths:
            if path.joins(a, b):
                return path
        raise KeyError(f"no path between {a!r} and {b!r}")

    # -- a canned instance -------------------------------------------------
    @classmethod
    def year_2000_testbed(cls) -> "CorridorMap":
        """The paper's world: LBL, SNL-CA and ANL with their resources."""
        from repro.core.platforms import Platforms, Wans

        cmap = cls()
        cmap.add_site(Site("lbl", "Lawrence Berkeley National Laboratory"))
        cmap.add_site(Site("snl", "Sandia National Laboratories, CA"))
        cmap.add_site(Site("anl", "Argonne National Laboratory"))
        cmap.add_cache(
            DataCacheResource(
                "lbl-dpss", "lbl", datasets=("combustion-640",)
            )
        )
        cmap.add_compute(
            ComputeResource("cplant", "snl", Platforms.CPLANT, max_pes=32)
        )
        cmap.add_compute(
            ComputeResource("onyx2", "anl", Platforms.ONYX2, max_pes=8)
        )
        cmap.add_compute(
            ComputeResource("e4500", "lbl", Platforms.E4500, max_pes=8)
        )
        cmap.add_path(NetworkPath("lbl", "snl", Wans.NTON_2000))
        cmap.add_path(NetworkPath("lbl", "anl", Wans.ESNET))
        return cmap
