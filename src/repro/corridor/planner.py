"""Session planning: pick the compute site that minimises frame period.

The predictor is the section 4.3 pipeline model fed with first-order
resource estimates:

- L: one timestep's bytes over the bottleneck of the WAN path's usable
  capacity and the platform's aggregate NIC ingest;
- R: the slab voxel count over the platform's per-CPU render rate;
- overlapped period per frame ~ max(L, R), serial ~ L + R.

The planner searches every registered compute resource and PE count
(powers of two up to ``max_pes``) and materialises the winner as a
:class:`~repro.core.campaign.CampaignConfig` so the user never touches
topology details -- the paper's "transparently take advantage of
remote and distributed resources".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.campaign import CampaignConfig, run_campaign
from repro.core.platforms import WanSpec, Wans
from repro.core.report import CampaignResult
from repro.corridor.registry import ComputeResource, CorridorMap
from repro.datagen.timeseries import TimeSeriesMeta
from repro.volren.decomposition import slab_decompose


@dataclass(frozen=True)
class SessionRequest:
    """What the scientist asks for: a dataset and a viewing location."""

    dataset: str
    meta: TimeSeriesMeta
    viewer_site: str
    n_timesteps: int = 10
    overlapped: bool = True

    def __post_init__(self):
        if self.n_timesteps < 1:
            raise ValueError("n_timesteps must be >= 1")


@dataclass(frozen=True)
class CandidateEstimate:
    """Predicted performance of one (resource, PE count) option."""

    resource: ComputeResource
    n_pes: int
    wan: Optional[WanSpec]
    load_seconds: float
    render_seconds: float

    @property
    def period(self) -> float:
        """Predicted steady-state seconds per timestep."""
        return max(self.load_seconds, self.render_seconds)

    @property
    def serial_period(self) -> float:
        return self.load_seconds + self.render_seconds


@dataclass
class PlannedSession:
    """The planner's choice plus the alternatives it rejected."""

    request: SessionRequest
    choice: CandidateEstimate
    candidates: List[CandidateEstimate] = field(default_factory=list)

    def to_campaign(self) -> CampaignConfig:
        """Materialise the plan as a runnable campaign."""
        wan = self.choice.wan if self.choice.wan is not None else Wans.LAN_GIGE
        viewer_remote = (
            self.request.viewer_site != self.choice.resource.site
        )
        return CampaignConfig(
            name=f"corridor-{self.request.dataset}-"
            f"{self.choice.resource.name}{self.choice.n_pes}",
            platform=self.choice.resource.platform,
            wan=wan,
            n_pes=self.choice.n_pes,
            overlapped=self.request.overlapped,
            n_timesteps=self.request.n_timesteps,
            shape=self.request.meta.shape,
            dataset_timesteps=self.request.meta.n_timesteps,
            viewer_remote=viewer_remote,
        )

    def summary(self) -> str:
        """Rationale, best first."""
        lines = [
            f"session plan for {self.request.dataset!r} "
            f"(viewer at {self.request.viewer_site}):"
        ]
        ranked = sorted(self.candidates, key=lambda c: c.period)
        for i, c in enumerate(ranked):
            marker = "->" if c is self.choice else "  "
            wan_name = c.wan.name if c.wan else "local-lan"
            lines.append(
                f" {marker} {c.resource.name}x{c.n_pes} via {wan_name}: "
                f"L~{c.load_seconds:.1f}s R~{c.render_seconds:.1f}s "
                f"period~{c.period:.1f}s"
            )
            if i >= 5:
                lines.append(f"    ... {len(ranked) - 6} more")
                break
        return "\n".join(lines)


def _pe_options(max_pes: int) -> List[int]:
    options = []
    n = 1
    while n <= max_pes:
        options.append(n)
        n *= 2
    return options


def estimate_candidate(
    resource: ComputeResource,
    n_pes: int,
    wan: Optional[WanSpec],
    meta: TimeSeriesMeta,
) -> CandidateEstimate:
    """First-order L and R for one placement option."""
    plat = resource.platform
    nic_aggregate = (
        plat.nic_rate * n_pes if plat.cluster else plat.nic_rate
    )
    wan_cap = wan.usable_capacity if wan is not None else 118e6  # gigE LAN
    ingest = min(nic_aggregate, wan_cap)
    load = meta.bytes_per_timestep / ingest

    slab_voxels = max(
        sub.n_voxels for sub in slab_decompose(meta.shape, n_pes)
    )
    concurrent = min(n_pes, plat.n_cpus) if not plat.cluster else n_pes
    # On an SMP with fewer CPUs than PEs the renders time-share.
    crowding = n_pes / concurrent
    render = (
        slab_voxels / plat.render_voxels_per_sec * crowding
    )
    return CandidateEstimate(
        resource=resource,
        n_pes=n_pes,
        wan=wan,
        load_seconds=load,
        render_seconds=render,
    )


def plan_session(cmap: CorridorMap, request: SessionRequest) -> PlannedSession:
    """Choose the placement minimising the predicted pipeline period.

    Ties break toward fewer PEs (cheaper allocation). Raises if no
    cache holds the dataset or no compute resource is reachable.
    """
    caches = cmap.caches_holding(request.dataset)
    if not caches:
        raise LookupError(
            f"no DPSS cache holds dataset {request.dataset!r}; stage it "
            "first (see repro.hpss.migrate_to_dpss)"
        )
    candidates: List[CandidateEstimate] = []
    for cache in caches:
        for resource in cmap.compute_resources:
            wan = cmap.path_between(cache.site, resource.site)
            wan_spec = wan.wan if wan is not None else None
            for n_pes in _pe_options(resource.max_pes):
                candidates.append(
                    estimate_candidate(
                        resource, n_pes, wan_spec, request.meta
                    )
                )
    if not candidates:
        raise LookupError("no compute resources registered")
    choice = min(candidates, key=lambda c: (c.period, c.n_pes))
    return PlannedSession(
        request=request, choice=choice, candidates=candidates
    )


def run_session(
    cmap: CorridorMap, request: SessionRequest
) -> Tuple[PlannedSession, CampaignResult]:
    """Plan, then actually run the chosen campaign on the simulator."""
    plan = plan_session(cmap, request)
    result = run_campaign(plan.to_campaign())
    return plan, result
