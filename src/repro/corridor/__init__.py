"""Corridor resource management: planning sessions across sites.

Section 5: "One of the appealing themes in Corridor projects is the
ability of a user to transparently take advantage of remote and
distributed resources, such as network storage caches and
computational facilities, without specialized knowledge about the
distributed resources ... A good deal of our future work will be
focused upon simplifying the access to and use of the remote and
distributed resources upon which Visapult is built."

This package is that future work, built: a registry of sites, compute
platforms, DPSS caches and WAN paths (:mod:`~repro.corridor.registry`),
and a planner (:mod:`~repro.corridor.planner`) that picks the compute
site and PE count minimising the predicted pipeline period using the
section 4.3 model, then materialises the choice as a runnable
campaign.
"""

from repro.corridor.registry import (
    ComputeResource,
    CorridorMap,
    DataCacheResource,
    NetworkPath,
    Site,
)
from repro.corridor.planner import (
    PlannedSession,
    SessionRequest,
    plan_session,
    run_session,
)

__all__ = [
    "ComputeResource",
    "CorridorMap",
    "DataCacheResource",
    "NetworkPath",
    "Site",
    "PlannedSession",
    "SessionRequest",
    "plan_session",
    "run_session",
]
