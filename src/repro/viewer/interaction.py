"""Viewer interaction: trackball rotation, orbit paths, stereo pairs.

Section 3.1 motivates the whole design with perception: "studies have
shown that motion parallax and a stereo display format increase
cognitive understanding of three dimensional depth relationships by
200%, as compared to viewing the same data in a still image." This
module provides the interaction pieces the live viewer uses to supply
both cues: a trackball controller (motion parallax from rotation), a
turntable path generator, and stereo camera pairs (the SC99
ImmersaDesk "allowed us to render the results in stereo").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.scenegraph.camera import Camera


class Trackball:
    """Accumulates azimuth/elevation rotations into a camera.

    Elevation clamps short of the poles so the orbit camera's up
    vector never degenerates.
    """

    def __init__(
        self,
        azimuth_deg: float = 0.0,
        elevation_deg: float = 0.0,
        *,
        distance: float = 3.0,
        extent: float = 1.6,
        target=(0.5, 0.5, 0.5),
        max_elevation_deg: float = 85.0,
    ):
        if not 0 < max_elevation_deg < 90.0:
            raise ValueError("max_elevation_deg must be in (0, 90)")
        self.azimuth_deg = float(azimuth_deg)
        self.max_elevation_deg = float(max_elevation_deg)
        self.elevation_deg = self._clamp(elevation_deg)
        self.distance = float(distance)
        self.extent = float(extent)
        self.target = tuple(target)

    def _clamp(self, elevation: float) -> float:
        return float(
            np.clip(elevation, -self.max_elevation_deg,
                    self.max_elevation_deg)
        )

    def rotate(self, d_azimuth_deg: float, d_elevation_deg: float) -> None:
        """Apply a drag: azimuth wraps, elevation clamps."""
        self.azimuth_deg = (self.azimuth_deg + d_azimuth_deg) % 360.0
        self.elevation_deg = self._clamp(
            self.elevation_deg + d_elevation_deg
        )

    def camera(self) -> Camera:
        """The current orbit camera."""
        return Camera.orbit(
            self.azimuth_deg,
            self.elevation_deg,
            target=self.target,
            distance=self.distance,
            extent=self.extent,
        )

    def view_direction(self) -> np.ndarray:
        """Unit vector from camera toward the model (for best-axis)."""
        return self.camera().forward


def orbit_path(
    n_frames: int,
    *,
    start_azimuth_deg: float = 0.0,
    sweep_deg: float = 360.0,
    elevation_deg: float = 15.0,
    distance: float = 3.0,
    extent: float = 1.6,
) -> Iterator[Camera]:
    """A turntable camera path: the canonical motion-parallax sweep."""
    if n_frames < 1:
        raise ValueError("n_frames must be >= 1")
    for i in range(n_frames):
        azimuth = start_azimuth_deg + sweep_deg * i / max(n_frames - 1, 1)
        yield Camera.orbit(
            azimuth, elevation_deg, distance=distance, extent=extent
        )


@dataclass(frozen=True)
class StereoRig:
    """A stereo camera pair derived from one mono camera.

    ``eye_separation`` is the interocular distance in world units;
    both eyes keep the mono camera's target (toe-in rig, as CRT-era
    stereo walls like the ImmersaDesk used).
    """

    eye_separation: float = 0.06

    def __post_init__(self):
        if self.eye_separation <= 0:
            raise ValueError("eye_separation must be > 0")

    def cameras(self, mono: Camera) -> Tuple[Camera, Camera]:
        """(left, right) eye cameras."""
        r, _u, _f = mono.basis()
        half = self.eye_separation / 2.0
        left = Camera(
            position=mono.position - half * r,
            target=mono.target,
            up=mono.up,
            extent=mono.extent,
        )
        right = Camera(
            position=mono.position + half * r,
            target=mono.target,
            up=mono.up,
            extent=mono.extent,
        )
        return left, right

    def render_pair(
        self, model, mono: Camera, width: int = 256, height: int = 256
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Render an IBRAVR model once per eye."""
        left_cam, right_cam = self.cameras(mono)
        return (
            model.render_frame(left_cam, width, height),
            model.render_frame(right_cam, width, height),
        )


def image_disparity(left: np.ndarray, right: np.ndarray) -> float:
    """Mean absolute difference between the eye images.

    Nonzero disparity is the depth signal a stereo display presents;
    a flat (2-D) scene yields ~0.
    """
    left = np.asarray(left, dtype=np.float64)
    right = np.asarray(right, dtype=np.float64)
    if left.shape != right.shape:
        raise ValueError(
            f"stereo images differ in shape: {left.shape} vs {right.shape}"
        )
    return float(np.abs(left - right).mean())


def motion_parallax(frames) -> float:
    """Mean frame-to-frame image change along a camera path.

    Zero for a still image; positive when rotation reveals depth
    (the second cue of the paper's 200% claim).
    """
    frames = [np.asarray(f, dtype=np.float64) for f in frames]
    if len(frames) < 2:
        raise ValueError("need at least two frames")
    diffs = [
        float(np.abs(b - a).mean()) for a, b in zip(frames, frames[1:])
    ]
    return float(np.mean(diffs))
