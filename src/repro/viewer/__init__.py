"""The Visapult viewer.

"The viewer itself is a multithreaded application, with one thread
dedicated to interactive rendering, and other threads dedicated to
receiving data from the Visapult back end visualization processes over
multiple simultaneous network connections" (section 3.4).

:mod:`~repro.viewer.sim` models the viewer's network half on the
simulator (per-PE receiver connections, payload accounting, V_* event
logging, and a decoupled render-thread frame-rate model);
:mod:`repro.live.viewer` is the real threaded implementation that
builds scene graphs from actual textures.
"""

from repro.viewer.sim import RenderLoopModel, SimViewer

__all__ = ["RenderLoopModel", "SimViewer"]
