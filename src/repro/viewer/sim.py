"""Simulated viewer: per-PE receivers, payload accounting, render loop.

The simulated viewer tracks what crosses the wire and when (to
reproduce the paper's traffic-asymmetry and interactivity claims); the
pixel-level scene graph work lives in the live implementation and
:mod:`repro.ibravr`.

The paper's "N I/O service threads decoupled from one render thread"
structure is expressed on the shared staged-pipeline framework: one
receive stage per back end PE, all merging into a single scene-update
stage that feeds the :class:`RenderLoopModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Set, Tuple

from repro.config import _UNSET, NetworkConfig, warn_deprecated_kwarg
from repro.netlogger.events import Tags
from repro.netlogger.logger import NetLogger
from repro.netsim.tcp import TcpConnection, TcpParams
from repro.simcore.events import Event
from repro.simcore.pipeline import DROP, BoundedBuffer, Pipeline, PipelineSummary
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.netlogger.daemon import NetLogDaemon
    from repro.netsim.topology import Network


@dataclass
class _Delivery:
    """One queued payload hand-off from a back end PE."""

    rank: int
    frame: int
    nbytes: float
    #: "light", "heavy", or "tile" (a per-rank tile batch)
    kind: str
    done: Event
    #: tile batches only: owned tiles in the batch, split into full
    #: pixel payloads and delta references
    ntiles: int = 0
    nfull: int = 0
    nref: int = 0


@dataclass(frozen=True)
class RenderLoopModel:
    """The decoupled render thread.

    Scene-graph updates arrive at whatever rate the pipeline delivers;
    the render thread redraws at ``fps`` regardless ("the graphics
    interactivity is effectively decoupled from the latency inherent
    in network applications"). ``frame_cost`` is the redraw time for
    the O(n^2) texture set; interactivity holds as long as
    ``frame_cost <= 1/fps``.
    """

    fps: float = 30.0
    frame_cost: float = 0.005

    def __post_init__(self):
        check_positive("fps", self.fps)
        check_positive("frame_cost", self.frame_cost)

    @property
    def interactive(self) -> bool:
        """True when the redraw budget fits the target frame rate."""
        return self.frame_cost <= 1.0 / self.fps

    def frames_rendered(self, wall_seconds: float) -> int:
        """Frames the render thread draws in a wall-clock span."""
        if wall_seconds < 0:
            raise ValueError("wall_seconds must be >= 0")
        rate = min(self.fps, 1.0 / self.frame_cost)
        return int(wall_seconds * rate)


class SimViewer:
    """Viewer-side endpoint: one receiver connection per back end PE.

    The back end registers each PE with :meth:`register_pe`, then
    calls :meth:`deliver_light` / :meth:`deliver_heavy`; both return
    events that fire when the viewer holds the payload. The viewer
    stamps its own V_* NetLogger events (Table 1) and counts
    scene-graph updates.
    """

    def __init__(
        self,
        network: "Network",
        host_name: str,
        *,
        daemon: Optional["NetLogDaemon"] = None,
        light_bytes: float = 256.0,
        config: Optional[NetworkConfig] = None,
        tcp_params: Optional[TcpParams] = _UNSET,
        render_loop: Optional[RenderLoopModel] = None,
    ):
        check_positive("light_bytes", light_bytes)
        if tcp_params is not _UNSET:
            if config is not None:
                raise ValueError(
                    "pass either config= or the deprecated tcp_params=, "
                    "not both"
                )
            warn_deprecated_kwarg(
                "SimViewer", "tcp_params", "config=NetworkConfig(tcp=...)"
            )
            config = NetworkConfig(
                tcp=tcp_params if tcp_params is not None else TcpParams()
            )
        self.config = config if config is not None else NetworkConfig()
        self.network = network
        self.host_name = host_name
        self.light_bytes = float(light_bytes)
        self.tcp_params = self.config.tcp
        self.render_loop = (
            render_loop if render_loop is not None else RenderLoopModel()
        )
        self.logger = NetLogger(
            host_name,
            "viewer",
            clock=lambda: network.env.now,
            daemon=daemon,
        )
        self._pe_hosts: Dict[int, str] = {}
        self._conns: Dict[int, TcpConnection] = {}
        self._started_frames: Set[Tuple[int, int]] = set()
        self.scene_updates = 0
        self.bytes_received = 0.0
        #: tile mode: full tiles / delta references / batch bytes seen
        self.tiles_full = 0
        self.tiles_ref = 0
        self.tile_bytes = 0.0
        self.frames_completed: Dict[int, Set[int]] = {}
        #: frame -> sim time its last registered PE's texture (or
        #: recorded hole) landed in the scene; the serving layer reads
        #: time-to-first-frame and sustained frame rate off this
        self.frame_complete_times: Dict[int, float] = {}
        #: (rank, frame) pairs whose texture never arrived; the scene
        #: keeps the slab's previous texture (or a hole on frame 0)
        self.missing_slabs: Set[Tuple[int, int]] = set()
        # Receive stages (one per PE) merge into the scene-update
        # stage, which performs the texture swap into the scene graph.
        # daemon=True: receive/scene stages serve for the whole run and
        # are legitimately parked on get() when the simulation ends.
        self._pipeline = Pipeline(
            network.env, name=f"viewer:{host_name}", daemon=True
        )
        self._inboxes: Dict[int, BoundedBuffer] = {}
        self._scene_buf = self._pipeline.buffer(None, name="scene-updates")
        self._pipeline.stage(
            "scene-update", self._scene_work, inbound=self._scene_buf
        )
        self._pipeline.start()

    # -- wiring -----------------------------------------------------------
    def register_pe(self, rank: int, host_name: str) -> None:
        """Create the receiver connection and stage for one back end PE."""
        if rank in self._conns:
            raise ValueError(f"rank {rank} already registered")
        self._pe_hosts[rank] = host_name
        conn = TcpConnection(
            self.network, host_name, self.host_name, self.tcp_params
        )
        conn.reserved_rate = self.config.reserved_rate
        self._conns[rank] = conn
        inbox = self._pipeline.buffer(None, name=f"inbox[{rank}]")
        self._inboxes[rank] = inbox
        self._pipeline.stage(
            f"receive[{rank}]",
            self._receive_work,
            inbound=inbox,
            outbound=self._scene_buf,
        )
        self._pipeline.start()

    @property
    def n_connections(self) -> int:
        """Receiver connections held (one per PE: the striped-socket,
        one-I/O-thread-per-PE structure of section 3.4)."""
        return len(self._conns)

    # -- delivery API used by the back end ---------------------------------
    def deliver_light(self, rank: int, frame: int) -> Event:
        """Ship visualization metadata (~256 bytes) from PE ``rank``."""
        return self._enqueue(rank, frame, self.light_bytes, kind="light")

    def deliver_heavy(self, rank: int, frame: int, nbytes: float) -> Event:
        """Ship a slab texture (plus optional geometry) from PE ``rank``."""
        check_positive("nbytes", nbytes)
        return self._enqueue(rank, frame, float(nbytes), kind="heavy")

    def deliver_tiles(
        self, rank: int, frame: int, nbytes: float, *,
        ntiles: int, nfull: int = 0, nref: int = 0,
    ) -> Event:
        """Ship one owner PE's per-frame tile batch.

        ``nfull`` tiles carry pixels, ``nref`` travel as delta
        references (header + content hash only); ``nbytes`` is the
        whole batch on the wire. A batch with ``ntiles=0`` is the
        empty manifest an owner with no visible tiles still sends so
        the frame can complete.
        """
        check_positive("nbytes", nbytes)
        if ntiles < 0 or nfull < 0 or nref < 0 or nfull + nref != ntiles:
            raise ValueError(
                f"tile batch counts must satisfy nfull + nref == ntiles "
                f">= 0, got ntiles={ntiles} nfull={nfull} nref={nref}"
            )
        return self._enqueue(
            rank, frame, float(nbytes), kind="tile",
            ntiles=ntiles, nfull=nfull, nref=nref,
        )

    def deliver_absent(self, rank: int, frame: int) -> Event:
        """Record that PE ``rank`` has no texture for ``frame``.

        Nothing crosses the wire; the viewer logs the hole
        (``V_SLAB_MISSING``) and the compositor renders the remaining
        slabs. The returned event is already complete.
        """
        if rank not in self._conns:
            raise KeyError(f"PE rank {rank} not registered with viewer")
        self.logger.log(Tags.V_SLAB_MISSING, frame=frame, rank=rank)
        self.missing_slabs.add((rank, frame))
        done = Event(self.network.env)
        done.succeed(None)
        return done

    def _enqueue(
        self, rank: int, frame: int, nbytes: float, *, kind: str,
        ntiles: int = 0, nfull: int = 0, nref: int = 0,
    ) -> Event:
        if rank not in self._conns:
            raise KeyError(f"PE rank {rank} not registered with viewer")
        done = Event(self.network.env)
        self._inboxes[rank].put(
            _Delivery(
                rank, frame, float(nbytes), kind, done,
                ntiles=ntiles, nfull=nfull, nref=nref,
            )
        )
        return done

    # -- pipeline stages ----------------------------------------------------
    def _receive_work(self, req: _Delivery):
        """One I/O service thread's unit of work: pull a payload."""
        conn = self._conns[req.rank]
        key = (req.rank, req.frame)
        if key not in self._started_frames:
            self._started_frames.add(key)
            self.logger.log(Tags.V_FRAME_START, frame=req.frame, rank=req.rank)
        if req.kind == "tile":
            start_tag, end_tag = Tags.TILE_RECV, Tags.TILE_RECV_END
        elif req.kind == "light":
            start_tag = Tags.V_LIGHTPAYLOAD_START
            end_tag = Tags.V_LIGHTPAYLOAD_END
        else:
            start_tag = Tags.V_HEAVYPAYLOAD_START
            end_tag = Tags.V_HEAVYPAYLOAD_END
        if req.kind == "tile":
            self.logger.log(
                start_tag, frame=req.frame, rank=req.rank,
                ntiles=req.ntiles, nfull=req.nfull, nref=req.nref,
            )
        else:
            self.logger.log(start_tag, frame=req.frame, rank=req.rank)
        stats = yield conn.send(
            req.nbytes,
            label=f"{req.kind}[{req.rank}]",
        )
        self.logger.log(end_tag, frame=req.frame, rank=req.rank)
        self.bytes_received += req.nbytes
        if req.kind == "light":
            # Metadata never touches the scene graph: complete here.
            req.done.succeed(stats)
            return DROP
        if req.kind == "tile":
            self.tiles_full += req.nfull
            self.tiles_ref += req.nref
            self.tile_bytes += req.nbytes
        return (req, stats)

    def _scene_work(self, item):
        """The render thread's ingest: swap a texture into the scene."""
        req, stats = item
        self.scene_updates += 1
        ranks = self.frames_completed.setdefault(req.frame, set())
        ranks.add(req.rank)
        if len(ranks) >= len(self._conns):
            self.frame_complete_times[req.frame] = self.network.env.now
        end_tag = (
            Tags.TILE_FRAME_END if req.kind == "tile" else Tags.V_FRAME_END
        )
        self.logger.log(end_tag, frame=req.frame, rank=req.rank)
        req.done.succeed(stats)
        return DROP

    # -- results ------------------------------------------------------------
    def complete_frames(self, n_pes: int) -> int:
        """Number of frames for which every PE's texture arrived."""
        return sum(
            1 for ranks in self.frames_completed.values()
            if len(ranks) >= n_pes
        )

    def pipeline_summary(self) -> PipelineSummary:
        """Per-stage accounting for the receive/scene-update pipeline."""
        return self._pipeline.summary()
