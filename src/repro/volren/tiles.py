"""Fixed-size screen tiles: grid, IDs, owners, and a change model.

The Distributed FrameBuffer design (Usher et al., PAPERS.md) replaces
whole per-PE slab images with fixed-size screen tiles: every tile has
a deterministic *owner* rank, per-PE fragments are routed to owners,
and each owner depth-composites only its own tiles. This module is the
pure-geometry core of that refactor:

- :class:`TileGrid` -- a row-major grid of ``tile_size`` x ``tile_size``
  tiles over a ``width`` x ``height`` viewport (edge tiles may be
  smaller), with integer tile IDs and deterministic owner assignment;
- :func:`split_tiles` / :func:`assemble_frame` -- lossless round trip
  between a full image and its per-tile crops;
- :func:`tile_content_hash` -- the digest used by delta transmission
  ("unchanged since the last delivered frame -> send a reference");
- :func:`tile_changed` / :func:`tile_version` -- a deterministic,
  RNG-free model of which tiles change between timesteps, so the
  simulated back end can exercise delta transmission without touching
  the seeded random streams that pin ULM byte parity.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

#: Digest width (bytes) of tile content hashes on the wire.
TILE_HASH_BYTES = 16


@dataclass(frozen=True)
class TileGrid:
    """A row-major grid of fixed-size screen tiles.

    Tile IDs run 0..n_tiles-1, left to right then top to bottom.
    Interior tiles are ``tile_size`` x ``tile_size``; tiles on the
    right/bottom edge are clipped to the viewport.
    """

    width: int
    height: int
    tile_size: int = 32

    def __post_init__(self):
        if self.width < 1 or self.height < 1:
            raise ValueError(
                f"viewport must be at least 1x1, got "
                f"{self.width}x{self.height}"
            )
        if self.tile_size < 1:
            raise ValueError(
                f"tile_size must be >= 1, got {self.tile_size}"
            )

    @property
    def tiles_x(self) -> int:
        """Number of tile columns."""
        return -(-self.width // self.tile_size)

    @property
    def tiles_y(self) -> int:
        """Number of tile rows."""
        return -(-self.height // self.tile_size)

    @property
    def n_tiles(self) -> int:
        """Total tile count."""
        return self.tiles_x * self.tiles_y

    def tile_rect(self, tile_id: int) -> Tuple[int, int, int, int]:
        """Pixel rect ``(x0, y0, x1, y1)`` of a tile, half-open."""
        if not 0 <= tile_id < self.n_tiles:
            raise ValueError(
                f"tile_id {tile_id} out of range [0, {self.n_tiles})"
            )
        ty, tx = divmod(tile_id, self.tiles_x)
        x0 = tx * self.tile_size
        y0 = ty * self.tile_size
        return (
            x0,
            y0,
            min(x0 + self.tile_size, self.width),
            min(y0 + self.tile_size, self.height),
        )

    def tile_shape(self, tile_id: int) -> Tuple[int, int]:
        """``(rows, cols)`` pixel shape of a tile."""
        x0, y0, x1, y1 = self.tile_rect(tile_id)
        return (y1 - y0, x1 - x0)

    def tile_pixels(self, tile_id: int) -> int:
        """Pixel count of a tile."""
        rows, cols = self.tile_shape(tile_id)
        return rows * cols

    def owner_of(self, tile_id: int, n_owners: int) -> int:
        """Deterministic owner rank of a tile (round-robin by ID)."""
        if n_owners < 1:
            raise ValueError(f"n_owners must be >= 1, got {n_owners}")
        if not 0 <= tile_id < self.n_tiles:
            raise ValueError(
                f"tile_id {tile_id} out of range [0, {self.n_tiles})"
            )
        return tile_id % n_owners

    def owned_tiles(self, rank: int, n_owners: int) -> Tuple[int, ...]:
        """All tile IDs owned by ``rank`` under round-robin assignment."""
        if n_owners < 1:
            raise ValueError(f"n_owners must be >= 1, got {n_owners}")
        if not 0 <= rank < n_owners:
            raise ValueError(
                f"rank {rank} out of range [0, {n_owners})"
            )
        return tuple(range(rank, self.n_tiles, n_owners))

    def tiles_in_rect(
        self, x0: float, y0: float, x1: float, y1: float
    ) -> Tuple[int, ...]:
        """Tile IDs overlapping a fractional viewport rect.

        Coordinates are fractions of the viewport in [0, 1]; the rect
        models a viewer frustum so partially-overlapping viewers can
        share tile renders through the cache.
        """
        if not (0.0 <= x0 < x1 <= 1.0 and 0.0 <= y0 < y1 <= 1.0):
            raise ValueError(
                f"rect must satisfy 0 <= lo < hi <= 1, got "
                f"({x0}, {y0}, {x1}, {y1})"
            )
        px0 = int(np.floor(x0 * self.width))
        py0 = int(np.floor(y0 * self.height))
        px1 = min(int(np.ceil(x1 * self.width)), self.width)
        py1 = min(int(np.ceil(y1 * self.height)), self.height)
        tx0 = px0 // self.tile_size
        ty0 = py0 // self.tile_size
        tx1 = min((px1 - 1) // self.tile_size, self.tiles_x - 1)
        ty1 = min((py1 - 1) // self.tile_size, self.tiles_y - 1)
        return tuple(
            ty * self.tiles_x + tx
            for ty in range(ty0, ty1 + 1)
            for tx in range(tx0, tx1 + 1)
        )

    def all_tiles(self) -> Tuple[int, ...]:
        """All tile IDs in row-major order."""
        return tuple(range(self.n_tiles))


def split_tiles(
    grid: TileGrid, image: np.ndarray
) -> Dict[int, np.ndarray]:
    """Cut a full (H, W, 4) image into per-tile crops keyed by tile ID."""
    image = np.asarray(image)
    if image.shape[:2] != (grid.height, grid.width):
        raise ValueError(
            f"image shape {image.shape[:2]} != viewport "
            f"({grid.height}, {grid.width})"
        )
    out: Dict[int, np.ndarray] = {}
    for tid in range(grid.n_tiles):
        x0, y0, x1, y1 = grid.tile_rect(tid)
        out[tid] = image[y0:y1, x0:x1]
    return out


def assemble_frame(
    grid: TileGrid, tiles: Mapping[int, np.ndarray]
) -> np.ndarray:
    """Paste per-tile crops back into a full (H, W, 4) frame.

    Tiles absent from the mapping stay zero (fully transparent), which
    is how a frustum-restricted viewer leaves off-screen tiles blank.
    """
    frame = np.zeros((grid.height, grid.width, 4), dtype=np.float32)
    for tid, img in tiles.items():
        x0, y0, x1, y1 = grid.tile_rect(tid)
        expected = (y1 - y0, x1 - x0)
        img = np.asarray(img)
        if img.shape[:2] != expected:
            raise ValueError(
                f"tile {tid} crop shape {img.shape[:2]} != {expected}"
            )
        frame[y0:y1, x0:x1] = img
    return frame


def tile_content_hash(tile_image: np.ndarray) -> bytes:
    """Content digest of one tile image (``TILE_HASH_BYTES`` bytes).

    Delta transmission compares this digest against the last delivered
    version of the same tile; a match means the viewer already holds
    the pixels and only a reference needs to travel.
    """
    arr = np.ascontiguousarray(np.asarray(tile_image))
    h = hashlib.blake2b(digest_size=TILE_HASH_BYTES)
    h.update(str(arr.shape).encode("ascii"))
    h.update(str(arr.dtype).encode("ascii"))
    h.update(arr.tobytes())
    return h.digest()


def _change_draw(dataset: str, frame: int, tile_id: int) -> float:
    """Deterministic uniform draw in [0, 1) for one (frame, tile)."""
    h = hashlib.blake2b(
        f"{dataset}:{frame}:{tile_id}".encode("utf-8"), digest_size=8
    )
    return int.from_bytes(h.digest(), "big") / 2.0**64


def tile_changed(
    dataset: str, frame: int, tile_id: int, change_fraction: float
) -> bool:
    """Whether a tile's content changed going into ``frame``.

    Frame 0 always changes (there is no prior content to reference).
    Later frames change with probability ``change_fraction``, decided
    by a hash of (dataset, frame, tile) -- deterministic and RNG-free,
    so enabling tiles never perturbs the seeded simulation streams.
    """
    if not 0.0 <= change_fraction <= 1.0:
        raise ValueError(
            f"change_fraction must be in [0, 1], got {change_fraction}"
        )
    if frame <= 0:
        return True
    if change_fraction >= 1.0:
        return True
    return _change_draw(dataset, frame, tile_id) < change_fraction


def tile_version(
    dataset: str, frame: int, tile_id: int, change_fraction: float
) -> int:
    """Monotonic content version of a tile at ``frame``.

    Version 1 is the initial content; each changed frame bumps it.
    Two frames share a version exactly when no change occurred between
    them, which is the delta-transmission reference condition.
    """
    if frame < 0:
        raise ValueError(f"frame must be >= 0, got {frame}")
    version = 1
    for f in range(1, frame + 1):
        if tile_changed(dataset, f, tile_id, change_fraction):
            version += 1
    return version


def slab_view_order(
    depths: Sequence[float], *, flip: bool = False
) -> List[int]:
    """Back-to-front composite order over per-slab view depths.

    Returns indices sorted by depth (farthest first); ``flip``
    reverses, mirroring the slab-axis sign convention used by the
    whole-image path so tile-split compositing replays the exact same
    order and stays bitwise identical.
    """
    order = sorted(range(len(depths)), key=lambda i: (depths[i], i))
    if flip:
        order.reverse()
    return order
