"""Transfer functions mapping scalar values to color and opacity."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


class TransferFunction:
    """Piecewise-linear RGBA transfer function on normalised scalars.

    Control points are ``(value, r, g, b, alpha)`` with ``value`` in
    [0, 1] and channels in [0, 1]; lookups interpolate linearly and
    clamp outside the range.
    """

    def __init__(self, points: Sequence[Tuple[float, float, float, float, float]]):
        pts = sorted(points, key=lambda p: p[0])
        if len(pts) < 2:
            raise ValueError("need at least two control points")
        arr = np.asarray(pts, dtype=np.float64)
        if arr.shape[1] != 5:
            raise ValueError("control points must be (value, r, g, b, a)")
        if arr.min() < 0.0 or arr.max() > 1.0:
            raise ValueError("all control-point components must be in [0, 1]")
        self._values = arr[:, 0]
        self._rgba = arr[:, 1:]
        if len(np.unique(self._values)) != len(self._values):
            raise ValueError("control-point values must be distinct")

    def __call__(self, scalars: np.ndarray) -> np.ndarray:
        """Map an array of scalars to RGBA; output shape = input + (4,)."""
        s = np.clip(np.asarray(scalars, dtype=np.float64), 0.0, 1.0)
        out = np.empty(s.shape + (4,), dtype=np.float32)
        for c in range(4):
            out[..., c] = np.interp(s, self._values, self._rgba[:, c])
        return out

    def opacity(self, scalars: np.ndarray) -> np.ndarray:
        """Alpha channel only (used by opacity-weighted compositing)."""
        s = np.clip(np.asarray(scalars, dtype=np.float64), 0.0, 1.0)
        return np.interp(s, self._values, self._rgba[:, 3]).astype(np.float32)

    # -- presets ---------------------------------------------------------
    @classmethod
    def grayscale(cls, max_alpha: float = 0.8) -> "TransferFunction":
        """Linear gray ramp with linear opacity."""
        return cls(
            [
                (0.0, 0.0, 0.0, 0.0, 0.0),
                (1.0, 1.0, 1.0, 1.0, max_alpha),
            ]
        )

    @classmethod
    def fire(cls) -> "TransferFunction":
        """Black-red-orange-yellow-white: the classic combustion map."""
        return cls(
            [
                (0.00, 0.0, 0.0, 0.0, 0.00),
                (0.25, 0.5, 0.0, 0.0, 0.05),
                (0.50, 1.0, 0.3, 0.0, 0.25),
                (0.75, 1.0, 0.7, 0.1, 0.55),
                (1.00, 1.0, 1.0, 0.8, 0.85),
            ]
        )

    @classmethod
    def opaque_fire(cls) -> "TransferFunction":
        """High-opacity fire map with a sharp front.

        Used by the IBRAVR artifact experiments: strong occlusion makes
        the slab-gap striping visible, as in the paper's Figure 6.
        """
        return cls(
            [
                (0.00, 0.0, 0.0, 0.0, 0.00),
                (0.45, 0.8, 0.1, 0.0, 0.00),
                (0.55, 1.0, 0.5, 0.0, 0.75),
                (1.00, 1.0, 1.0, 0.8, 0.95),
            ]
        )

    @classmethod
    def cool(cls) -> "TransferFunction":
        """Blue-cyan-white map suited to density data."""
        return cls(
            [
                (0.00, 0.0, 0.0, 0.1, 0.00),
                (0.35, 0.0, 0.2, 0.7, 0.10),
                (0.70, 0.1, 0.6, 0.9, 0.40),
                (1.00, 0.9, 1.0, 1.0, 0.80),
            ]
        )
