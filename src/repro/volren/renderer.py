"""Per-PE renderer facade and the calibrated compute-cost model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.volren.decomposition import SubVolume
from repro.volren.raycast import render_slab
from repro.volren.transfer import TransferFunction
from repro.util.validation import check_positive


@dataclass(frozen=True)
class RenderCostModel:
    """Maps voxels rendered to reference-CPU seconds.

    ``voxels_per_second`` is the software volume rendering throughput
    of the *reference* CPU (cpu_speed=1.0 hosts); calibration targets
    in :mod:`repro.core.platforms` pin it so that, e.g., a quarter of a
    640x256x256 grid takes ~8.5 s on a CPlant node (Figure 10) and an
    eighth takes ~12 s on a 336 MHz E4500 CPU (Figures 12-13).
    """

    voxels_per_second: float = 1.0e6
    #: fixed per-frame overhead (setup, metadata, image pack), seconds
    per_frame_overhead: float = 0.05

    def __post_init__(self):
        check_positive("voxels_per_second", self.voxels_per_second)
        if self.per_frame_overhead < 0:
            raise ValueError("per_frame_overhead must be >= 0")

    def cpu_seconds(self, n_voxels: float) -> float:
        """Reference-CPU seconds to render ``n_voxels``."""
        if n_voxels < 0:
            raise ValueError("n_voxels must be >= 0")
        return n_voxels / self.voxels_per_second + self.per_frame_overhead


@dataclass
class SlabRendering:
    """Output of rendering one PE's slab for one timestep."""

    rank: int
    image: np.ndarray  # premultiplied RGBA float32 (H, W, 4)
    depth: Optional[np.ndarray]  # offset map for the quad-mesh extension
    axis: int
    flip: bool
    #: slab center along the view axis in [0, 1] world coordinates
    slab_center: Tuple[float, float, float]
    #: slab extents in [0, 1] world coordinates
    slab_lo: Tuple[float, float, float]
    slab_hi: Tuple[float, float, float]

    @property
    def texture_bytes(self) -> int:
        """Wire size of the texture as RGBA8 (what the protocol ships)."""
        h, w = self.image.shape[:2]
        return h * w * 4


class VolumeRenderer:
    """Renders subvolumes into IBRAVR source textures.

    One instance per back end PE; stateless apart from its transfer
    function, so the same object serves every timestep.
    """

    def __init__(
        self,
        tf: Optional[TransferFunction] = None,
        *,
        with_depth: bool = False,
    ):
        self.tf = tf if tf is not None else TransferFunction.grayscale()
        self.with_depth = with_depth

    def render(
        self,
        sub: SubVolume,
        voxels: np.ndarray,
        full_shape: Tuple[int, int, int],
        *,
        axis: int = 0,
        flip: bool = False,
    ) -> SlabRendering:
        """Render a PE's voxels into its slab texture."""
        if tuple(voxels.shape) != sub.shape:
            raise ValueError(
                f"voxels shape {voxels.shape} != subvolume shape {sub.shape}"
            )
        image, depth = render_slab(
            voxels, self.tf, axis=axis, flip=flip,
            return_depth=self.with_depth,
        )
        scale = np.asarray(full_shape, dtype=np.float64)
        lo = tuple(np.asarray(sub.lo) / scale)
        hi = tuple(np.asarray(sub.hi) / scale)
        return SlabRendering(
            rank=sub.rank,
            image=image,
            depth=depth,
            axis=axis,
            flip=flip,
            slab_center=sub.center(full_shape),
            slab_lo=lo,
            slab_hi=hi,
        )
