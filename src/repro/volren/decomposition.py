"""Slab, shaft and block domain decompositions (Figure 4).

The Visapult back end partitions the source volume across PEs. The
IBRAVR pipeline requires the *slab* decomposition (one image per slab
becomes one viewer texture); shaft and block decompositions are
provided for completeness and for the decomposition-communication
trade-off analysis of section 3.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class SubVolume:
    """A PE's share of the domain: inclusive-lo/exclusive-hi voxel box."""

    rank: int
    lo: Tuple[int, int, int]
    hi: Tuple[int, int, int]

    def __post_init__(self):
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if any(h <= l for l, h in zip(self.lo, self.hi)):
            raise ValueError(f"empty subvolume lo={self.lo} hi={self.hi}")

    @property
    def shape(self) -> Tuple[int, int, int]:
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def n_voxels(self) -> int:
        s = self.shape
        return s[0] * s[1] * s[2]

    def extract(self, volume: np.ndarray) -> np.ndarray:
        """Slice this subvolume out of the full array."""
        if tuple(volume.shape) < self.hi:
            raise ValueError(
                f"volume shape {volume.shape} smaller than box hi {self.hi}"
            )
        sl = tuple(slice(l, h) for l, h in zip(self.lo, self.hi))
        return volume[sl]

    def center(self, shape: Tuple[int, int, int]) -> Tuple[float, float, float]:
        """Subvolume center in normalised [0, 1]^3 world coordinates."""
        return tuple(
            (l + h) / 2.0 / s for l, h, s in zip(self.lo, self.hi, shape)
        )


def _axis_splits(extent: int, n: int) -> List[Tuple[int, int]]:
    """Split ``extent`` cells into ``n`` near-equal contiguous ranges."""
    edges = np.linspace(0, extent, n + 1).round().astype(int)
    return [(int(edges[i]), int(edges[i + 1])) for i in range(n)]


def slab_decompose(
    shape: Tuple[int, int, int], n: int, *, axis: int = 0
) -> List[SubVolume]:
    """Slabs perpendicular to ``axis``: the IBRAVR partitioning."""
    _validate(shape, n)
    if axis not in (0, 1, 2):
        raise ValueError(f"axis must be 0, 1 or 2, got {axis}")
    if n > shape[axis]:
        raise ValueError(
            f"cannot cut {shape[axis]} cells into {n} slabs along axis {axis}"
        )
    out = []
    for rank, (lo_a, hi_a) in enumerate(_axis_splits(shape[axis], n)):
        lo = [0, 0, 0]
        hi = list(shape)
        lo[axis], hi[axis] = lo_a, hi_a
        out.append(SubVolume(rank, tuple(lo), tuple(hi)))
    return out


def shaft_decompose(
    shape: Tuple[int, int, int], nx: int, ny: int
) -> List[SubVolume]:
    """Shafts: a 2-D grid of cuts across the first two axes."""
    _validate(shape, nx * ny)
    if nx > shape[0] or ny > shape[1]:
        raise ValueError("more shafts than cells along a cut axis")
    out = []
    rank = 0
    for lo_x, hi_x in _axis_splits(shape[0], nx):
        for lo_y, hi_y in _axis_splits(shape[1], ny):
            out.append(
                SubVolume(
                    rank, (lo_x, lo_y, 0), (hi_x, hi_y, shape[2])
                )
            )
            rank += 1
    return out


def block_decompose(
    shape: Tuple[int, int, int], nx: int, ny: int, nz: int
) -> List[SubVolume]:
    """Blocks: a 3-D grid of cuts."""
    _validate(shape, nx * ny * nz)
    if nx > shape[0] or ny > shape[1] or nz > shape[2]:
        raise ValueError("more blocks than cells along a cut axis")
    out = []
    rank = 0
    for lo_x, hi_x in _axis_splits(shape[0], nx):
        for lo_y, hi_y in _axis_splits(shape[1], ny):
            for lo_z, hi_z in _axis_splits(shape[2], nz):
                out.append(
                    SubVolume(rank, (lo_x, lo_y, lo_z), (hi_x, hi_y, hi_z))
                )
                rank += 1
    return out


def decompose(
    shape: Tuple[int, int, int],
    n: int,
    *,
    strategy: str = "slab",
    axis: int = 0,
) -> List[SubVolume]:
    """Dispatch on decomposition strategy name.

    ``shaft``/``block`` require ``n`` to have an exact 2-D/3-D
    factorisation; the squarest factorisation is chosen.
    """
    if strategy == "slab":
        return slab_decompose(shape, n, axis=axis)
    if strategy == "shaft":
        fx, fy = _squarest_factors(n, 2)
        return shaft_decompose(shape, fx, fy)
    if strategy == "block":
        fx, fy, fz = _squarest_factors(n, 3)
        return block_decompose(shape, fx, fy, fz)
    raise ValueError(f"unknown strategy {strategy!r}")


def _squarest_factors(n: int, dims: int) -> Tuple[int, ...]:
    """Factor ``n`` into ``dims`` integers as near-equal as possible."""
    if dims == 2:
        best = (1, n)
        for a in range(1, int(np.sqrt(n)) + 1):
            if n % a == 0:
                best = (n // a, a)
        return best
    # dims == 3
    best = (n, 1, 1)
    score = float("inf")
    for a in range(1, n + 1):
        if n % a:
            continue
        for b in range(1, n // a + 1):
            if (n // a) % b:
                continue
            c = n // a // b
            spread = max(a, b, c) - min(a, b, c)
            if spread < score:
                score = spread
                best = tuple(sorted((a, b, c), reverse=True))
    return best


def _validate(shape: Tuple[int, int, int], n: int) -> None:
    if len(shape) != 3 or any(s < 1 for s in shape):
        raise ValueError(f"bad shape {shape}")
    if n < 1:
        raise ValueError(f"need at least one part, got {n}")
