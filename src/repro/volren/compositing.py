"""Porter-Duff *over* compositing for premultiplied RGBA images.

Object-order parallel volume rendering requires an ordered
recombination step: "Recombination consists of image compositing using
alpha blending, and must occur in a prescribed order (back-to-front or
front-to-back)" (section 3.2, citing Porter & Duff).

All functions here operate on **premultiplied-alpha** float images of
shape (H, W, 4). Premultiplication makes *over* associative, which is
what lets slab images be composited pairwise in any grouping as long
as the order is respected.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.volren.tiles import TileGrid


def _check_image(img: np.ndarray, name: str) -> np.ndarray:
    img = np.asarray(img)
    if img.ndim != 3 or img.shape[2] != 4:
        raise ValueError(f"{name} must be (H, W, 4), got {img.shape}")
    return img.astype(np.float32, copy=False)


def composite_over(front: np.ndarray, back: np.ndarray) -> np.ndarray:
    """``front over back`` for premultiplied RGBA images."""
    front = _check_image(front, "front")
    back = _check_image(back, "back")
    if front.shape != back.shape:
        raise ValueError(
            f"image shapes differ: {front.shape} vs {back.shape}"
        )
    alpha_f = front[..., 3:4]
    return front + back * (1.0 - alpha_f)


def composite_stack(
    images: Sequence[np.ndarray], *, front_to_back: bool = True
) -> np.ndarray:
    """Composite an ordered stack of premultiplied RGBA images.

    ``images[0]`` is nearest the eye when ``front_to_back`` is True,
    farthest otherwise. Both orders produce identical results (the
    *over* operator is associative); the flag only declares how the
    sequence is ordered.
    """
    if not images:
        raise ValueError("empty image stack")
    seq = list(images) if front_to_back else list(images)[::-1]
    out = _check_image(seq[0], "images[0]").copy()
    for img in seq[1:]:
        out = composite_over(out, img)
    return out


def composite_tiled(
    images: Sequence[np.ndarray],
    grid: "TileGrid",
    *,
    front_to_back: bool = True,
) -> np.ndarray:
    """Composite a stack per screen tile and reassemble the frame.

    *over* is a per-pixel operator, so cutting every layer into the
    same fixed tile grid, compositing each tile's stack independently
    (in the same order), and pasting the tiles back together is
    bitwise identical to whole-image compositing. This is the property
    the tile-routed transport relies on for pixel parity with slab
    mode.
    """
    from repro.volren.tiles import assemble_frame, split_tiles

    if not images:
        raise ValueError("empty image stack")
    layers = [split_tiles(grid, _check_image(img, "image")) for img in images]
    tiles = {
        tid: composite_stack(
            [layer[tid] for layer in layers], front_to_back=front_to_back
        )
        for tid in range(grid.n_tiles)
    }
    return assemble_frame(grid, tiles)


def premultiply(rgba: np.ndarray) -> np.ndarray:
    """Convert straight-alpha RGBA to premultiplied."""
    rgba = _check_image(rgba, "rgba")
    out = rgba.copy()
    out[..., :3] *= rgba[..., 3:4]
    return out


def unpremultiply(rgba: np.ndarray) -> np.ndarray:
    """Convert premultiplied RGBA back to straight alpha."""
    rgba = _check_image(rgba, "rgba")
    out = rgba.copy()
    alpha = rgba[..., 3:4]
    nz = alpha[..., 0] > 1e-12
    out[nz, :3] = rgba[nz, :3] / alpha[nz]
    return out
