"""Software volume rendering: the Visapult back end's compute kernel.

The back end is "a parallelized software volume rendering engine that
uses a domain-decomposed partitioning" (section 3.0). This package
provides:

- :mod:`~repro.volren.transfer` -- scalar -> RGBA transfer functions;
- :mod:`~repro.volren.compositing` -- Porter-Duff *over* compositing
  (the ordered recombination step of object-order parallel volume
  rendering, section 3.2);
- :mod:`~repro.volren.decomposition` -- slab, shaft and block domain
  decompositions (Figure 4);
- :mod:`~repro.volren.raycast` -- axis-aligned slab rendering (the
  IBRAVR source-image generator) and an arbitrary-angle ground-truth
  ray caster used to quantify IBR artifacts;
- :mod:`~repro.volren.renderer` -- a per-PE renderer facade with a
  calibrated compute-cost model.
"""

from repro.volren.transfer import TransferFunction
from repro.volren.compositing import (
    composite_over,
    composite_stack,
    composite_tiled,
)
from repro.volren.decomposition import (
    SubVolume,
    block_decompose,
    decompose,
    shaft_decompose,
    slab_decompose,
)
from repro.volren.imageorder import (
    ScreenTile,
    assemble_tiles,
    redistribution_voxels,
    render_tile,
    screen_tiles_from_grid,
    tile_data_bounds,
    tile_decompose,
    work_imbalance,
)
from repro.volren.raycast import render_slab, render_view
from repro.volren.renderer import RenderCostModel, VolumeRenderer
from repro.volren.tiles import (
    TileGrid,
    assemble_frame,
    slab_view_order,
    split_tiles,
    tile_changed,
    tile_content_hash,
    tile_version,
)

__all__ = [
    "TransferFunction",
    "composite_over",
    "composite_stack",
    "SubVolume",
    "block_decompose",
    "decompose",
    "shaft_decompose",
    "slab_decompose",
    "render_slab",
    "render_view",
    "ScreenTile",
    "assemble_tiles",
    "redistribution_voxels",
    "render_tile",
    "screen_tiles_from_grid",
    "tile_data_bounds",
    "tile_decompose",
    "work_imbalance",
    "RenderCostModel",
    "VolumeRenderer",
    "TileGrid",
    "assemble_frame",
    "composite_tiled",
    "slab_view_order",
    "split_tiles",
    "tile_changed",
    "tile_content_hash",
    "tile_version",
]
