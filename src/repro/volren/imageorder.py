"""Image-order parallel volume rendering: the contrasted baseline.

Section 3.2: "Image order algorithms, on the other hand, assign some
region of screen space to each processor. The resulting images
produced by each processor do not overlap, so recombination is not
subject to an ordered image composition step. Depending upon the view,
image order algorithms require some amount of data duplication across
the processors, so do not scale as well with data size ... In some
views, there may be some processors with little or no work. In
addition, as the model moves, the source volume data required at a
given processor will change, requiring data redistribution as a
function of model and view orientation."

This module implements that baseline for real -- screen tiles rendered
by orthographic ray casting -- plus the analysis quantities of the
paper's comparison: per-tile data footprints, view-driven
redistribution volume, and load imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.volren.tiles import TileGrid

from repro.scenegraph.camera import Camera
from repro.volren.transfer import TransferFunction


@dataclass(frozen=True)
class ScreenTile:
    """One PE's region of screen space: [x0, x1) x [y0, y1) pixels."""

    rank: int
    x0: int
    x1: int
    y0: int
    y1: int

    def __post_init__(self):
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise ValueError("empty tile")

    @property
    def n_pixels(self) -> int:
        return (self.x1 - self.x0) * (self.y1 - self.y0)


def screen_tiles_from_grid(
    grid: "TileGrid", n_owners: int
) -> List[ScreenTile]:
    """Bridge a fixed :class:`~repro.volren.tiles.TileGrid` into
    image-order screen tiles.

    Each grid tile becomes a :class:`ScreenTile` whose ``rank`` is the
    tile's deterministic owner, so the image-order analysis machinery
    (footprints, redistribution, imbalance) applies unchanged to the
    owner-routed tile decomposition.
    """
    return [
        ScreenTile(
            rank=grid.owner_of(tid, n_owners),
            x0=rect[0], x1=rect[2], y0=rect[1], y1=rect[3],
        )
        for tid in range(grid.n_tiles)
        for rect in (grid.tile_rect(tid),)
    ]


def tile_decompose(width: int, height: int, n: int) -> List[ScreenTile]:
    """Split the viewport into ``n`` near-equal horizontal bands."""
    if width < 1 or height < 1:
        raise ValueError("viewport must be at least 1x1")
    if n < 1 or n > height:
        raise ValueError(f"cannot cut {height} rows into {n} tiles")
    edges = np.linspace(0, height, n + 1).round().astype(int)
    return [
        ScreenTile(rank=i, x0=0, x1=width, y0=int(edges[i]),
                   y1=int(edges[i + 1]))
        for i in range(n)
    ]


def _tile_ray_geometry(
    camera: Camera, tile: ScreenTile, width: int, height: int
):
    """World-space origins of a tile's pixel rays plus the ray dir."""
    r, u, f = camera.basis()
    aspect = width / height
    half_h = camera.extent / 2.0
    half_w = half_h * aspect
    xs = (np.arange(tile.x0, tile.x1) + 0.5) / width * 2.0 - 1.0
    ys = 1.0 - (np.arange(tile.y0, tile.y1) + 0.5) / height * 2.0
    X, Y = np.meshgrid(xs * half_w, ys * half_h)
    origins = (
        np.asarray(camera.target)[None, None, :]
        + X[..., None] * r
        + Y[..., None] * u
    )
    return origins, f


def render_tile(
    volume: np.ndarray,
    tf: TransferFunction,
    camera: Camera,
    tile: ScreenTile,
    width: int,
    height: int,
    *,
    samples_per_voxel: float = 1.0,
) -> np.ndarray:
    """Ray-cast one screen tile of the full volume.

    Unlike the object-order path there is no compositing order issue:
    each tile owns its pixels outright.
    """
    from scipy.ndimage import map_coordinates

    origins, f = _tile_ray_geometry(camera, tile, width, height)
    max_dim = max(volume.shape)
    half_extent = np.sqrt(3.0) / 2.0
    n_samples = max(int(np.sqrt(3.0) * max_dim * samples_per_voxel), 2)
    ts = np.linspace(-half_extent, half_extent, n_samples)
    step_voxels = (ts[1] - ts[0]) * max_dim

    h, w = origins.shape[:2]
    accum = np.zeros((h, w, 4), dtype=np.float32)
    transparency = np.ones((h, w, 1), dtype=np.float32)
    shape = np.asarray(volume.shape, dtype=np.float64)
    vol32 = volume.astype(np.float32)
    for t in ts:
        pos = origins + t * f
        inside = np.all((pos >= 0.0) & (pos <= 1.0), axis=-1)
        if not inside.any():
            continue
        idx = pos * shape[None, None, :] - 0.5
        scalars = map_coordinates(
            vol32,
            [idx[..., 0], idx[..., 1], idx[..., 2]],
            order=1, mode="constant", cval=0.0,
        )
        scalars = np.where(inside, scalars, 0.0)
        rgba = tf(scalars)
        alpha = 1.0 - np.power(
            np.clip(1.0 - rgba[..., 3], 1e-7, 1.0), step_voxels
        )
        a = alpha[..., None].astype(np.float32)
        accum[..., :3] += transparency * rgba[..., :3] * a
        accum[..., 3:] += transparency * a
        transparency *= 1.0 - a
        if float(transparency.max()) < 1e-4:
            break
    return accum


def assemble_tiles(
    tiles: List[ScreenTile],
    images: List[np.ndarray],
    width: int,
    height: int,
) -> np.ndarray:
    """Paste tile images into the final frame -- no ordered compositing."""
    if len(tiles) != len(images):
        raise ValueError("one image per tile required")
    frame = np.zeros((height, width, 4), dtype=np.float32)
    for tile, img in zip(tiles, images):
        expected = (tile.y1 - tile.y0, tile.x1 - tile.x0, 4)
        if img.shape != expected:
            raise ValueError(
                f"tile {tile.rank} image shape {img.shape} != {expected}"
            )
        frame[tile.y0:tile.y1, tile.x0:tile.x1] = img
    return frame


def tile_data_bounds(
    camera: Camera,
    tile: ScreenTile,
    volume_shape: Tuple[int, int, int],
    width: int,
    height: int,
) -> Tuple[Tuple[int, int, int], Tuple[int, int, int]]:
    """Voxel AABB a tile's rays traverse: the PE's data footprint.

    The tile's rays sweep a parallelepiped (the tile rectangle
    extruded along the view direction); its axis-aligned bounding box
    clipped to the volume is the data this PE must hold for this view.
    """
    origins, f = _tile_ray_geometry(camera, tile, width, height)
    corners = np.array(
        [
            origins[0, 0], origins[0, -1], origins[-1, 0], origins[-1, -1],
        ]
    )
    half_extent = np.sqrt(3.0) / 2.0
    swept = np.vstack(
        [corners + half_extent * f, corners - half_extent * f]
    )
    lo_w = np.clip(swept.min(axis=0), 0.0, 1.0)
    hi_w = np.clip(swept.max(axis=0), 0.0, 1.0)
    shape = np.asarray(volume_shape)
    lo = np.floor(lo_w * shape).astype(int)
    hi = np.ceil(hi_w * shape).astype(int)
    hi = np.maximum(hi, lo + 1)
    hi = np.minimum(hi, shape)
    lo = np.minimum(lo, hi - 1)
    return tuple(int(v) for v in lo), tuple(int(v) for v in hi)


def footprint_voxels(bounds) -> int:
    """Voxel count of a data footprint box."""
    lo, hi = bounds
    return int(np.prod([h - l for l, h in zip(lo, hi)]))


def redistribution_voxels(
    old_camera: Camera,
    new_camera: Camera,
    tiles: List[ScreenTile],
    volume_shape: Tuple[int, int, int],
    width: int,
    height: int,
) -> int:
    """Voxels that must move when the view changes.

    For each tile, the new footprint's voxels outside the old
    footprint must be fetched -- "requiring data redistribution as a
    function of model and view orientation". Object-order partitions
    pay zero here, whatever the view does.
    """
    total = 0
    for tile in tiles:
        old_lo, old_hi = tile_data_bounds(
            old_camera, tile, volume_shape, width, height
        )
        new_lo, new_hi = tile_data_bounds(
            new_camera, tile, volume_shape, width, height
        )
        inter_lo = [max(a, b) for a, b in zip(old_lo, new_lo)]
        inter_hi = [min(a, b) for a, b in zip(old_hi, new_hi)]
        inter = int(
            np.prod([max(h - l, 0) for l, h in zip(inter_lo, inter_hi)])
        )
        new_total = footprint_voxels((new_lo, new_hi))
        total += new_total - inter
    return total


def work_imbalance(
    volume: np.ndarray,
    tf: TransferFunction,
    camera: Camera,
    tiles: List[ScreenTile],
    width: int,
    height: int,
) -> float:
    """Max-to-mean ratio of per-tile rendering work.

    Work is estimated as the opacity mass a tile's pixels accumulate:
    empty tiles ("processors with little or no work") pull the mean
    down and the ratio up.
    """
    works = []
    for tile in tiles:
        img = render_tile(
            volume, tf, camera, tile, width, height,
            samples_per_voxel=0.5,
        )
        works.append(float(img[..., 3].sum()) + 1e-9)
    mean = float(np.mean(works))
    return float(np.max(works)) / mean if mean > 0 else 1.0
