"""Ray casting: axis-aligned slab rendering and ground-truth views.

:func:`render_slab` is the back end's kernel: an orthographic,
axis-aligned front-to-back composite through a slab of voxels,
producing the 2-D texture the viewer maps onto slab geometry. IBRAVR
source images "are obtained by volume rendering the slab of data"
(section 3.3).

:func:`render_view` is an arbitrary-angle orthographic ray caster used
as ground truth when quantifying IBRAVR's off-axis artifacts
(Figure 6); it resamples the volume with trilinear interpolation along
view-aligned rays.

Both kernels come in two bitwise-identical flavours (the PR 5 oracle
pattern): the default ``vectorized=True`` path batches the
transfer-function evaluation and expresses the front-to-back composite
through ``cumprod`` transparencies, while ``vectorized=False`` walks
rays sample-by-sample in Python as the pinned reference.  Parity is
exact because both paths perform the same float32 elementwise
operations in the same order: ``cumprod``/repeated in-place adds are
strict left folds, the transfer function is elementwise (``np.interp``)
and therefore indifferent to batching, and transparency uses the
product form ``T_k = prod_{j<k} (1 - alpha_j)`` in both.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
from scipy.ndimage import map_coordinates

from repro.volren.transfer import TransferFunction

#: image-plane axes for each view axis (view along axis -> rows, cols)
_PLANE_AXES = {0: (1, 2), 1: (0, 2), 2: (0, 1)}

#: early-exit threshold: stop once every ray is this close to opaque
_OPACITY_CUTOFF = 1e-4

#: transfer-function evaluation chunk, in scalars: big enough to
#: amortise the call, small enough that the float64 temporaries inside
#: :class:`TransferFunction` stay cache-resident
_TF_CHUNK_SCALARS = 1 << 20


def _check_volume(volume: np.ndarray) -> np.ndarray:
    volume = np.asarray(volume)
    if volume.ndim != 3:
        raise ValueError(f"volume must be 3-D, got ndim={volume.ndim}")
    return volume


def _tf_stack(vol_view: np.ndarray, tf: TransferFunction) -> np.ndarray:
    """Evaluate ``tf`` over a (slices, H, W) view into a float32 stack.

    Chunked along the slice axis: one giant call would drag ~50 MB of
    float64 temporaries through the cache for a 128^3 volume, while
    per-slice calls pay the Python/ufunc overhead n times.  Chunking
    changes nothing numerically -- the transfer function is elementwise.
    """
    n, h, w = vol_view.shape
    rgba = np.empty((n, h, w, 4), dtype=np.float32)
    chunk = max(1, _TF_CHUNK_SCALARS // max(h * w, 1))
    for k in range(0, n, chunk):
        rgba[k : k + chunk] = tf(vol_view[k : k + chunk])
    return rgba


def render_slab(
    volume: np.ndarray,
    tf: TransferFunction,
    *,
    axis: int = 0,
    flip: bool = False,
    return_depth: bool = False,
    vectorized: bool = True,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Composite a slab front-to-back along an axis.

    Returns ``(image, depth)`` where ``image`` is a premultiplied RGBA
    float32 array over the two non-view axes and ``depth`` (when
    requested) is the opacity-weighted mean slice index in [0, 1] --
    the offset map of the paper's quad-mesh IBRAVR extension
    (section 3.3), else ``None``.

    ``flip=True`` views the slab from the negative side of ``axis``.
    ``vectorized=False`` selects the per-pixel reference composite
    (bitwise identical, orders of magnitude slower).
    """
    volume = _check_volume(volume)
    if axis not in (0, 1, 2):
        raise ValueError(f"axis must be 0, 1 or 2, got {axis}")
    vol_view = np.moveaxis(volume, axis, 0)
    if flip:
        vol_view = vol_view[::-1]
    if vectorized:
        return _render_slab_vectorized(vol_view, tf, return_depth)
    return _render_slab_scalar(vol_view, tf, return_depth)


def _render_slab_vectorized(
    vol_view: np.ndarray, tf: TransferFunction, return_depth: bool
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    n_slices = vol_view.shape[0]
    out_shape = vol_view.shape[1:]

    rgba = _tf_stack(vol_view, tf)
    alpha = rgba[..., 3]
    # Premultiply in place -- the stack is ours, no defensive copy.
    rgba[..., :3] *= alpha[..., None]

    # Front-to-back transparency by cumulative product: T_k is the
    # transparency *before* sample k (ones-prefixed, exclusive cumprod).
    # multiply.accumulate is a strict left fold, so T matches the
    # oracle's running ``t *= 1 - a`` bit for bit.
    t_before = np.empty_like(alpha)
    t_before[0] = 1.0
    np.cumprod(1.0 - alpha[:-1], axis=0, out=t_before[1:])

    contrib = rgba
    contrib *= t_before[..., None]

    accum = np.zeros(out_shape + (4,), dtype=np.float32)
    depth_num = np.zeros(out_shape, dtype=np.float32) if return_depth else None
    depth_den = np.zeros(out_shape, dtype=np.float32) if return_depth else None
    inv_span = 1.0 / max(n_slices - 1, 1)
    for position in range(n_slices):
        accum += contrib[position]
        if return_depth:
            assert depth_num is not None and depth_den is not None
            ca = contrib[position, ..., 3]
            depth_num += ca * (position * inv_span)
            depth_den += ca
    return accum, _finish_depth(depth_num, depth_den, out_shape, return_depth)


def _render_slab_scalar(
    vol_view: np.ndarray, tf: TransferFunction, return_depth: bool
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Per-pixel reference composite (the pinned oracle).

    Same float32 operations in the same order as the vectorized path:
    premultiply, contribution ``(c * a) * T``, running transparency
    ``t *= 1 - a`` per ray.
    """
    n_slices = vol_view.shape[0]
    h, w = vol_view.shape[1:]
    accum = np.zeros((h, w, 4), dtype=np.float32)
    transp = np.ones((h, w), dtype=np.float32)
    depth_num = np.zeros((h, w), dtype=np.float32) if return_depth else None
    depth_den = np.zeros((h, w), dtype=np.float32) if return_depth else None
    one = np.float32(1.0)
    inv_span = 1.0 / max(n_slices - 1, 1)
    for position in range(n_slices):
        rgba = tf(vol_view[position])
        frac = position * inv_span
        for r in range(h):
            for c in range(w):
                a = rgba[r, c, 3]
                t = transp[r, c]
                accum[r, c, :3] += (rgba[r, c, :3] * a) * t
                ca = a * t
                accum[r, c, 3] += ca
                if return_depth:
                    assert depth_num is not None and depth_den is not None
                    depth_num[r, c] += ca * frac
                    depth_den[r, c] += ca
                transp[r, c] = t * (one - a)
    return accum, _finish_depth(depth_num, depth_den, (h, w), return_depth)


def _finish_depth(
    depth_num: Optional[np.ndarray],
    depth_den: Optional[np.ndarray],
    out_shape: Tuple[int, ...],
    return_depth: bool,
) -> Optional[np.ndarray]:
    if not return_depth:
        return None
    assert depth_num is not None and depth_den is not None
    depth = np.zeros(out_shape, dtype=np.float32)
    hit = depth_den > 1e-12
    depth[hit] = depth_num[hit] / depth_den[hit]
    return depth


def view_direction(azimuth_deg: float, elevation_deg: float) -> np.ndarray:
    """Unit view direction from azimuth/elevation about the +x axis.

    ``azimuth = elevation = 0`` looks along +x (the slab axis used in
    the artifact experiments); azimuth rotates in the x-y plane,
    elevation lifts toward +z.
    """
    az = np.deg2rad(azimuth_deg)
    el = np.deg2rad(elevation_deg)
    d = np.array(
        [np.cos(el) * np.cos(az), np.cos(el) * np.sin(az), np.sin(el)]
    )
    return d / np.linalg.norm(d)


def render_view(
    volume: np.ndarray,
    tf: TransferFunction,
    direction: np.ndarray,
    *,
    image_size: int = 128,
    samples_per_voxel: float = 1.0,
    vectorized: bool = True,
    early_exit: bool = True,
    stats: Optional[Dict[str, int]] = None,
) -> np.ndarray:
    """Ground-truth orthographic render along an arbitrary direction.

    The image plane is perpendicular to ``direction``, centered on the
    volume, sized to circumscribe it. Opacity is corrected for sample
    spacing so results are comparable across step sizes.

    ``early_exit`` stops compositing once every ray's transparency has
    dropped below the opacity cutoff (in the vectorized path this is an
    opacity-threshold mask over the precomputed transparency stack; the
    scalar oracle breaks out of its sample loop).  When ``stats`` is
    given it receives ``samples_visited`` / ``n_samples``.
    """
    volume = _check_volume(volume)
    if image_size < 2:
        raise ValueError("image_size must be >= 2")
    if samples_per_voxel <= 0:
        raise ValueError("samples_per_voxel must be > 0")
    d = np.asarray(direction, dtype=np.float64)
    norm = np.linalg.norm(d)
    if norm == 0:
        raise ValueError("direction must be non-zero")
    d = d / norm

    # Orthonormal basis (u, v) spanning the image plane.
    helper = np.array([0.0, 0.0, 1.0])
    if abs(np.dot(helper, d)) > 0.9:
        helper = np.array([0.0, 1.0, 0.0])
    u = np.cross(helper, d)
    u /= np.linalg.norm(u)
    v = np.cross(d, u)

    half_extent = np.sqrt(3.0) / 2.0  # circumscribes the unit cube
    coords_1d = np.linspace(-half_extent, half_extent, image_size)
    max_dim = max(volume.shape)
    n_samples = max(int(np.sqrt(3.0) * max_dim * samples_per_voxel), 2)
    ts = np.linspace(-half_extent, half_extent, n_samples)
    step_voxels = (ts[1] - ts[0]) * max_dim  # sample spacing in voxels

    center = np.array([0.5, 0.5, 0.5])
    # World positions: center + r*u + c*v + t*d, front (small t) first.
    R, C, T = np.meshgrid(coords_1d, coords_1d, ts, indexing="ij")
    pos = (
        center[None, None, None, :]
        + R[..., None] * u
        + C[..., None] * v
        + T[..., None] * d
    )
    shape = np.asarray(volume.shape, dtype=np.float64)
    idx = pos * shape[None, None, None, :] - 0.5
    scalars = map_coordinates(
        volume.astype(np.float32),
        [idx[..., 0], idx[..., 1], idx[..., 2]],
        order=1,
        mode="constant",
        cval=0.0,
    )
    # Mask samples outside the unit cube so padding never contributes.
    inside = np.all((pos >= 0.0) & (pos <= 1.0), axis=-1)
    scalars = np.where(inside, scalars, 0.0)

    rgba = tf(scalars)  # (H, W, S, 4), straight alpha
    # Opacity correction: control points define opacity per voxel step.
    # float32 throughout the composite so the oracle's running
    # transparency and the vectorized cumprod round identically.
    alpha = (
        1.0 - np.power(np.clip(1.0 - rgba[..., 3], 1e-7, 1.0), step_voxels)
    ).astype(np.float32)
    color = rgba[..., :3]

    if vectorized:
        accum, visited = _composite_view_vectorized(
            color, alpha, image_size, early_exit
        )
    else:
        accum, visited = _composite_view_scalar(
            color, alpha, image_size, early_exit
        )
    if stats is not None:
        stats["samples_visited"] = visited
        stats["n_samples"] = n_samples
    return accum


def _composite_view_vectorized(
    color: np.ndarray, alpha: np.ndarray, image_size: int, early_exit: bool
) -> Tuple[np.ndarray, int]:
    n_samples = alpha.shape[2]
    # Exclusive cumprod: transparency *before* each sample, per ray.
    t_before = np.empty_like(alpha)
    t_before[:, :, 0] = 1.0
    np.cumprod(1.0 - alpha[:, :, :-1], axis=2, out=t_before[:, :, 1:])

    visited = n_samples
    if early_exit:
        # The oracle breaks *after* accumulating sample s once
        # max(T_{s+1}) < cutoff; T is nonincreasing per ray, so the
        # image-wide max is nonincreasing and the mask has one edge.
        t_after = t_before[:, :, 1:].max(axis=(0, 1)).astype(np.float64)
        below = np.flatnonzero(t_after < _OPACITY_CUTOFF)
        if below.size:
            visited = int(below[0]) + 1

    contrib_rgb = color[:, :, :visited, :] * alpha[:, :, :visited, None]
    contrib_rgb *= t_before[:, :, :visited, None]
    contrib_a = t_before[:, :, :visited] * alpha[:, :, :visited]

    accum = np.zeros((image_size, image_size, 4), dtype=np.float32)
    for s in range(visited):
        accum[..., :3] += contrib_rgb[:, :, s, :]
        accum[..., 3] += contrib_a[:, :, s]
    return accum, visited


def _composite_view_scalar(
    color: np.ndarray, alpha: np.ndarray, image_size: int, early_exit: bool
) -> Tuple[np.ndarray, int]:
    """Reference per-sample composite loop (the pinned oracle)."""
    n_samples = alpha.shape[2]
    accum = np.zeros((image_size, image_size, 4), dtype=np.float32)
    transparency = np.ones((image_size, image_size, 1), dtype=np.float32)
    visited = n_samples
    for s in range(n_samples):
        a = alpha[:, :, s, None]
        pre = color[:, :, s, :] * a
        accum[..., :3] += transparency * pre
        accum[..., 3:] += transparency * a
        transparency *= 1.0 - a
        if early_exit and float(transparency.max()) < _OPACITY_CUTOFF:
            visited = s + 1
            break
    return accum, visited
