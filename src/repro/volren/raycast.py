"""Ray casting: axis-aligned slab rendering and ground-truth views.

:func:`render_slab` is the back end's kernel: an orthographic,
axis-aligned front-to-back composite through a slab of voxels,
producing the 2-D texture the viewer maps onto slab geometry. IBRAVR
source images "are obtained by volume rendering the slab of data"
(section 3.3).

:func:`render_view` is an arbitrary-angle orthographic ray caster used
as ground truth when quantifying IBRAVR's off-axis artifacts
(Figure 6); it resamples the volume with trilinear interpolation along
view-aligned rays.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.ndimage import map_coordinates

from repro.volren.transfer import TransferFunction

#: image-plane axes for each view axis (view along axis -> rows, cols)
_PLANE_AXES = {0: (1, 2), 1: (0, 2), 2: (0, 1)}


def _check_volume(volume: np.ndarray) -> np.ndarray:
    volume = np.asarray(volume)
    if volume.ndim != 3:
        raise ValueError(f"volume must be 3-D, got ndim={volume.ndim}")
    return volume


def render_slab(
    volume: np.ndarray,
    tf: TransferFunction,
    *,
    axis: int = 0,
    flip: bool = False,
    return_depth: bool = False,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Composite a slab front-to-back along an axis.

    Returns ``(image, depth)`` where ``image`` is a premultiplied RGBA
    float32 array over the two non-view axes and ``depth`` (when
    requested) is the opacity-weighted mean slice index in [0, 1] --
    the offset map of the paper's quad-mesh IBRAVR extension
    (section 3.3), else ``None``.

    ``flip=True`` views the slab from the negative side of ``axis``.
    """
    volume = _check_volume(volume)
    if axis not in (0, 1, 2):
        raise ValueError(f"axis must be 0, 1 or 2, got {axis}")
    n_slices = volume.shape[axis]
    rows_ax, cols_ax = _PLANE_AXES[axis]
    out_shape = (volume.shape[rows_ax], volume.shape[cols_ax])

    accum = np.zeros(out_shape + (4,), dtype=np.float32)
    depth_num = np.zeros(out_shape, dtype=np.float32) if return_depth else None
    depth_den = np.zeros(out_shape, dtype=np.float32) if return_depth else None

    order = range(n_slices - 1, -1, -1) if flip else range(n_slices)
    for position, idx in enumerate(order):
        sl = [slice(None)] * 3
        sl[axis] = idx
        scalars = volume[tuple(sl)]
        rgba = tf(scalars)
        # Premultiply, then *front over accum-so-far is wrong*: we walk
        # front-to-back, so accumulate back slices under the running
        # front image: accum = accum over slice.
        alpha = rgba[..., 3:4]
        pre = rgba.copy()
        pre[..., :3] *= alpha
        transparency = 1.0 - accum[..., 3:4]
        if return_depth:
            contrib = (transparency[..., 0] * alpha[..., 0]).astype(np.float32)
            frac = position / max(n_slices - 1, 1)
            depth_num += contrib * frac
            depth_den += contrib
        accum += pre * transparency

    depth = None
    if return_depth:
        depth = np.zeros(out_shape, dtype=np.float32)
        hit = depth_den > 1e-12
        depth[hit] = depth_num[hit] / depth_den[hit]
    return accum, depth


def view_direction(azimuth_deg: float, elevation_deg: float) -> np.ndarray:
    """Unit view direction from azimuth/elevation about the +x axis.

    ``azimuth = elevation = 0`` looks along +x (the slab axis used in
    the artifact experiments); azimuth rotates in the x-y plane,
    elevation lifts toward +z.
    """
    az = np.deg2rad(azimuth_deg)
    el = np.deg2rad(elevation_deg)
    d = np.array(
        [np.cos(el) * np.cos(az), np.cos(el) * np.sin(az), np.sin(el)]
    )
    return d / np.linalg.norm(d)


def render_view(
    volume: np.ndarray,
    tf: TransferFunction,
    direction: np.ndarray,
    *,
    image_size: int = 128,
    samples_per_voxel: float = 1.0,
) -> np.ndarray:
    """Ground-truth orthographic render along an arbitrary direction.

    The image plane is perpendicular to ``direction``, centered on the
    volume, sized to circumscribe it. Opacity is corrected for sample
    spacing so results are comparable across step sizes.
    """
    volume = _check_volume(volume)
    if image_size < 2:
        raise ValueError("image_size must be >= 2")
    if samples_per_voxel <= 0:
        raise ValueError("samples_per_voxel must be > 0")
    d = np.asarray(direction, dtype=np.float64)
    norm = np.linalg.norm(d)
    if norm == 0:
        raise ValueError("direction must be non-zero")
    d = d / norm

    # Orthonormal basis (u, v) spanning the image plane.
    helper = np.array([0.0, 0.0, 1.0])
    if abs(np.dot(helper, d)) > 0.9:
        helper = np.array([0.0, 1.0, 0.0])
    u = np.cross(helper, d)
    u /= np.linalg.norm(u)
    v = np.cross(d, u)

    half_extent = np.sqrt(3.0) / 2.0  # circumscribes the unit cube
    coords_1d = np.linspace(-half_extent, half_extent, image_size)
    max_dim = max(volume.shape)
    n_samples = max(int(np.sqrt(3.0) * max_dim * samples_per_voxel), 2)
    ts = np.linspace(-half_extent, half_extent, n_samples)
    step_voxels = (ts[1] - ts[0]) * max_dim  # sample spacing in voxels

    center = np.array([0.5, 0.5, 0.5])
    # World positions: center + r*u + c*v + t*d, front (small t) first.
    R, C, T = np.meshgrid(coords_1d, coords_1d, ts, indexing="ij")
    pos = (
        center[None, None, None, :]
        + R[..., None] * u
        + C[..., None] * v
        + T[..., None] * d
    )
    shape = np.asarray(volume.shape, dtype=np.float64)
    idx = pos * shape[None, None, None, :] - 0.5
    scalars = map_coordinates(
        volume.astype(np.float32),
        [idx[..., 0], idx[..., 1], idx[..., 2]],
        order=1,
        mode="constant",
        cval=0.0,
    )
    # Mask samples outside the unit cube so padding never contributes.
    inside = np.all((pos >= 0.0) & (pos <= 1.0), axis=-1)
    scalars = np.where(inside, scalars, 0.0)

    rgba = tf(scalars)  # (H, W, S, 4), straight alpha
    # Opacity correction: control points define opacity per voxel step.
    alpha = 1.0 - np.power(
        np.clip(1.0 - rgba[..., 3], 1e-7, 1.0), step_voxels
    )
    color = rgba[..., :3]

    accum = np.zeros((image_size, image_size, 4), dtype=np.float32)
    transparency = np.ones((image_size, image_size, 1), dtype=np.float32)
    for s in range(n_samples):
        a = alpha[:, :, s, None]
        pre = color[:, :, s, :] * a
        accum[..., :3] += transparency * pre
        accum[..., 3:] += transparency * a
        transparency *= 1.0 - a
        if float(transparency.max()) < 1e-4:
            break
    return accum
