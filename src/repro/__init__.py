"""Visapult reproduction.

A from-scratch Python reproduction of the system described in

    W. Bethel, B. Tierney, J. Lee, D. Gunter, S. Lau,
    "Using High-Speed WANs and Network Data Caches to Enable Remote
    and Distributed Visualization", SC 2000 (LBNL-45365).

The package provides:

- :mod:`repro.simcore` -- a deterministic discrete-event simulation
  kernel with fluid (processor-sharing) resources.
- :mod:`repro.netsim` -- WAN/LAN/host models calibrated to the paper's
  testbeds (NTON, ESnet, SC99 SciNet, gigabit LANs).
- :mod:`repro.dpss` -- the Distributed-Parallel Storage System network
  block cache (master, block servers, striped datasets, parallel
  client).
- :mod:`repro.hpss` -- a tertiary-archive staging model.
- :mod:`repro.volren`, :mod:`repro.ibravr`, :mod:`repro.scenegraph` --
  the software volume renderer, IBR-assisted volume rendering, and the
  scene-graph/rasterizer used by the viewer.
- :mod:`repro.netlogger` -- NetLogger-style instrumentation and NLV
  analysis.
- :mod:`repro.backend`, :mod:`repro.viewer`, :mod:`repro.core` -- the
  Visapult back end, viewer, and campaign orchestration (the paper's
  primary contribution).
- :mod:`repro.live` -- the same pipeline over real localhost sockets
  and threads.

Quickstart::

    from repro.core import CampaignConfig, run_campaign
    result = run_campaign(CampaignConfig.lan_e4500(overlapped=True))
    print(result.summary())
"""

from repro._version import __version__

__all__ = ["__version__"]
