"""Command-line interface: run campaigns, probes and demos.

Installed as the ``visapult`` console script::

    visapult list
    visapult campaign lan_e4500 --overlapped --nlv
    visapult campaign lan_e4500 --scaled --sanitize
    visapult campaign --faults examples/plans/sc99_flaky.json --sanitize
    visapult campaign sc99-flaky --stripe 4+1
    visapult serve-sim sc99-multiviewer --viewers 6 --scaled
    visapult serve-sim sc99-serve10k --sessions 2000 --flow-classes on
    visapult bench --quick --check
    visapult bench --suite shard --quick --check
    visapult bench --suite stripe --quick --check
    visapult bench --suite kernels --quick --check
    visapult lint
    visapult check src/repro --json CHECK_findings.json
    visapult iperf --wan esnet --streams 8
    visapult artifacts --angles 0 16 45
    visapult live --pes 4 --steps 3 --overlapped
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._version import __version__


def cmd_list(_args) -> int:
    from repro.config import topology_names
    from repro.core import campaign_names

    print("available campaigns:")
    for name in campaign_names():
        print(f"  {name}")
    print("available topologies (serve-sim --topology):")
    for name in topology_names():
        print(f"  {name}")
    return 0


def _write_payload(path: str, payload, label: str) -> None:
    import json

    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"{label} -> {path}")


def _result_to_payload(result):
    """The versioned JSON envelope for any campaign result kind."""
    from repro.service.metrics import result_payload

    if hasattr(result, "to_payload"):  # ShardResult
        return result.to_payload()
    service = getattr(result, "service", None)
    if service is not None:  # ServiceResult
        return result_payload("service", service)
    return result_payload("campaign", result.metrics_dict())


def cmd_campaign(args) -> int:
    from repro.config import ExperimentConfig
    from repro.core import run_campaign
    from repro.netlogger import lifeline_plot

    # A fault drill file can carry the whole experiment (campaign,
    # scale, seed, policy); explicit CLI flags win over the drill.
    drill = None
    if args.faults is not None:
        from repro.faults import load_drill

        drill = load_drill(args.faults)
    name = args.name or (drill.campaign if drill is not None else None)
    if name is None:
        print("no campaign named (positionally or in the drill file); "
              "try 'visapult list'", file=sys.stderr)
        return 2
    experiment = ExperimentConfig(
        campaign=name,
        overlapped=args.overlapped
        or (drill is not None and drill.overlapped),
        frames=args.frames,
        scaled=args.scaled or (drill is not None and drill.scaled),
        seed=args.seed
        if args.seed is not None
        else (drill.seed if drill is not None else None),
        sanitize=args.sanitize,
        faults=drill.plan if drill is not None else None,
        policy=drill.policy if drill is not None else None,
        tiles=args.tiles,
        tile_size=args.tile_size,
        stripe=args.stripe,
    )
    if args.stripe is not None:
        from repro.config import StripeConfig

        try:
            StripeConfig.from_spec(args.stripe)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    try:
        config = experiment.to_campaign_config()
    except KeyError as exc:
        print(f"{exc.args[0]}; try 'visapult list'", file=sys.stderr)
        return 2
    result = run_campaign(
        config,
        sanitize=args.sanitize,
        ulm_path=args.ulm,
        alloc_stats=args.alloc_stats,
    )
    print(result.summary())
    if args.json is not None:
        _write_payload(args.json, _result_to_payload(result), "result")
    if args.nlv and hasattr(result, "event_log"):
        print()
        print(lifeline_plot(result.event_log, width=args.width))
    if args.sanitize:
        from repro.analysis import SanitizerReport

        report = SanitizerReport(
            findings=getattr(result, "sanitizer_findings", [])
        )
        print(report.summary())
        if not report.clean:
            return 1
    return 0


def _serve_shard(args, config) -> int:
    """serve-sim over a :class:`~repro.service.shard.ShardCampaign`."""
    from repro.config import FlowClassConfig, named_topology
    from repro.core import run_campaign

    for flag in ("scaled", "no_cache", "tiles", "stripe"):
        if getattr(args, flag):
            print(
                f"--{flag.replace('_', '-')} applies to full-world "
                "service campaigns, not shard campaigns",
                file=sys.stderr,
            )
            return 2
    if args.topology is not None:
        from dataclasses import replace

        try:
            topology = named_topology(args.topology)
        except KeyError as exc:
            print(f"{exc.args[0]}; try 'visapult list'", file=sys.stderr)
            return 2
        # Profiles pinned to sites the new topology lacks fall back
        # to round-robin homing.
        known = set(topology.site_names)
        profiles = tuple(
            replace(p, region=None)
            if p.region is not None and p.region not in known
            else p
            for p in config.workload.profiles
        )
        config = config.with_changes(
            topology=topology,
            workload=config.workload.with_changes(profiles=profiles),
        )
    if args.flow_classes is not None:
        config = config.with_changes(
            flow_classes=FlowClassConfig(
                enabled=args.flow_classes == "on"
            )
        )
    sessions = args.sessions if args.sessions is not None else args.viewers
    if sessions is not None:
        config = config.with_changes(
            workload=config.workload.with_changes(n_viewers=sessions)
        )
    if args.frames is not None:
        config = config.with_changes(frames=args.frames)
    if args.seed is not None:
        config = config.with_changes(seed=args.seed)
    result = run_campaign(config, ulm_path=args.ulm)
    print(result.summary())
    if args.json is not None:
        _write_payload(args.json, result.to_payload(), "shard metrics")
    return 0


def cmd_serve(args) -> int:
    from repro.core import named_campaign, run_campaign
    from repro.service import CacheConfig, ServiceCampaign
    from repro.service.shard import ShardCampaign

    try:
        config = named_campaign(args.name)
    except KeyError as exc:
        print(f"{exc.args[0]}; try 'visapult list'", file=sys.stderr)
        return 2
    if isinstance(config, ShardCampaign):
        return _serve_shard(args, config)
    if not isinstance(config, ServiceCampaign):
        print(
            f"{args.name!r} is a single-session campaign; "
            "use 'visapult campaign'",
            file=sys.stderr,
        )
        return 2
    if (
        args.topology is not None
        or args.flow_classes is not None
        or args.sessions is not None
    ):
        print(
            f"{args.name!r} is a full-world service campaign; "
            "--topology/--flow-classes/--sessions apply to shard "
            "campaigns (try sc99-serve10k)",
            file=sys.stderr,
        )
        return 2
    if args.viewers is not None:
        config = config.with_changes(
            workload=config.workload.with_changes(n_viewers=args.viewers)
        )
    if args.frames is not None:
        config = config.with_changes(
            base=config.base.with_changes(n_timesteps=args.frames)
        )
    if args.scaled:
        frames = args.frames or config.base.n_timesteps
        config = config.with_changes(
            base=config.base.with_changes(
                shape=(160, 64, 64), dataset_timesteps=max(frames, 8)
            )
        )
    if args.no_cache:
        config = config.with_changes(cache=CacheConfig(enabled=False))
    if args.tiles:
        from repro.config import TileConfig

        tiles = TileConfig(
            enabled=True,
            **({"tile_size": args.tile_size}
               if args.tile_size is not None else {}),
        )
        config = config.with_changes(
            base=config.base.with_changes(tiles=tiles)
        )
    if args.stripe is not None:
        from repro.config import StripeConfig

        try:
            stripe = StripeConfig.from_spec(args.stripe)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        config = config.with_changes(
            base=config.base.with_changes(stripe=stripe)
        )
    if args.seed is not None:
        config = config.with_changes(seed=args.seed)
    result = run_campaign(
        config, ulm_path=args.ulm, alloc_stats=args.alloc_stats
    )
    print(result.summary())
    if args.json is not None:
        _write_payload(
            args.json, _result_to_payload(result), "service metrics"
        )
    return 0


def cmd_bench(args) -> int:
    import json

    if args.suite == "render":
        from repro.core import bench_render as suite_mod

        results = suite_mod.run_suite(quick=args.quick)
        default_baseline = "benchmarks/perf/baseline_render.json"
    elif args.suite == "shard":
        from repro.core import bench_shard as suite_mod  # type: ignore[no-redef]

        results = suite_mod.run_suite(quick=args.quick)
        default_baseline = "benchmarks/perf/baseline_shard.json"
    elif args.suite == "stripe":
        from repro.core import bench_stripe as suite_mod  # type: ignore[no-redef]

        results = suite_mod.run_suite(quick=args.quick)
        default_baseline = "benchmarks/perf/baseline_stripe.json"
    elif args.suite == "kernels":
        from repro.core import bench_kernels as suite_mod  # type: ignore[no-redef]

        results = suite_mod.run_suite(quick=args.quick)
        default_baseline = "benchmarks/perf/baseline_kernels.json"
    else:
        from repro.core import bench as suite_mod  # type: ignore[no-redef]

        results = suite_mod.run_suite(quick=args.quick, e2e=not args.no_e2e)
        default_baseline = "benchmarks/perf/baseline.json"
    print(suite_mod.summary(results))
    if args.output is not None:
        suite_mod.write_results(results, args.output)
        print(f"benchmark results -> {args.output}")
    if args.check:
        baseline_path = args.baseline or default_baseline
        try:
            with open(baseline_path) as fh:
                baseline = json.load(fh)
        except OSError as exc:
            print(f"cannot read baseline: {exc}", file=sys.stderr)
            return 2
        failures = suite_mod.check_regression(results, baseline)
        if failures:
            print("benchmark regressions vs baseline:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"no benchmark regression vs {baseline_path}")
    return 0


def cmd_lint(args) -> int:
    from repro.analysis.lint import main as lint_main

    return lint_main(args.paths)


def cmd_check(args) -> int:
    from repro.analysis.check import main as check_main

    argv: List[str] = list(args.paths)
    if args.json is not None:
        argv.extend(["--json"] if args.json == "-" else ["--json", args.json])
    if args.sarif is not None:
        argv.extend(["--sarif", args.sarif])
    if args.baseline is not None:
        argv.extend(["--baseline", args.baseline])
    if args.no_baseline:
        argv.append("--no-baseline")
    if args.update_baseline:
        argv.append("--update-baseline")
    return check_main(argv)


def cmd_iperf(args) -> int:
    from repro.core.platforms import Wans
    from repro.netsim import Host, Link, Network, TcpParams, iperf
    from repro.util.units import MB, mbps

    wans = {
        "nton": Wans.NTON_2000,
        "nton-tuned": Wans.NTON_TUNED,
        "esnet": Wans.ESNET,
        "scinet": Wans.SCINET99,
        "lan": Wans.LAN_GIGE,
    }
    spec = wans[args.wan]
    net = Network()
    net.add_host(Host("src", nic_rate=mbps(2000)))
    net.add_host(Host("dst", nic_rate=mbps(2000)))
    link = net.add_link(
        Link(spec.name, rate=spec.rate, latency=spec.latency,
             efficiency=spec.efficiency,
             background_rate=spec.background_rate)
    )
    net.add_route("src", "dst", [link])
    result = iperf(
        net, "src", "dst",
        nbytes=args.megabytes * MB,
        streams=args.streams,
        params=TcpParams(max_window=spec.tcp_window),
    )
    print(
        f"{spec.name}: {result.mbps:.1f} Mbps aggregate over "
        f"{args.streams} stream(s) ({args.megabytes} MB in "
        f"{result.duration:.2f} s)"
    )
    return 0


def cmd_artifacts(args) -> int:
    from repro.datagen import CombustionConfig, combustion_field
    from repro.ibravr import artifact_sweep
    from repro.volren import TransferFunction

    volume = combustion_field(
        0.0,
        CombustionConfig(shape=(args.size,) * 3, n_kernels=4,
                         front_sharpness=10.0),
    )
    tf = TransferFunction.opaque_fire()
    sweep = artifact_sweep(
        volume, tf, args.angles, n_slabs=args.slabs,
        image_size=args.image_size,
        axis_switching=args.axis_switching,
    )
    mode = "axis switching" if args.axis_switching else "slabs pinned to X"
    print(f"IBRAVR artifact sweep ({mode}):")
    for s in sweep:
        print(
            f"  {s.angle_deg:6.1f} deg : rms {s.rms_error:.4f} "
            f"(slab axis {s.slab_axis})"
        )
    return 0


def cmd_live(args) -> int:
    from repro.datagen import (
        CombustionConfig,
        SyntheticTimeSeries,
        TimeSeriesMeta,
        combustion_field,
    )
    from repro.live import LiveBackEnd, LiveViewer

    shape = (args.size,) * 3
    cfg = CombustionConfig(shape=shape)
    meta = TimeSeriesMeta(name="cli-live", shape=shape,
                          n_timesteps=args.steps)
    source = SyntheticTimeSeries(
        meta, lambda t: combustion_field(t, cfg), dt=0.5
    )
    viewer = LiveViewer(frame_size=args.image_size)
    port = viewer.start()
    backend = LiveBackEnd(
        source, args.pes, port, overlapped=args.overlapped,
        n_timesteps=args.steps,
    )
    backend.run(timeout=300.0)
    ok = viewer.wait_done(timeout=60.0)
    viewer.stop()
    if viewer.errors:
        raise viewer.errors[0]
    print(
        f"live run: {args.steps} timesteps x {args.pes} PEs "
        f"({'overlapped' if args.overlapped else 'serial'}); "
        f"viewer assembled {len(viewer.frames_assembled)} frames, "
        f"drew {viewer.rendered_images} images"
    )
    if args.output and viewer.last_image is not None:
        from repro.util.image import save_ppm

        print(f"final frame -> {save_ppm(args.output, viewer.last_image)}")
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="visapult",
        description="Visapult reproduction: campaigns, probes, demos.",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list campaign names").set_defaults(
        fn=cmd_list
    )

    p = sub.add_parser("campaign", help="run a simulated campaign")
    p.add_argument("name", nargs="?", default=None,
                   help="campaign name (may come from the drill file)")
    p.add_argument("--overlapped", action="store_true")
    p.add_argument("--frames", type=int, default=None)
    p.add_argument("--scaled", action="store_true",
                   help="shrink the dataset for a fast demo")
    p.add_argument("--seed", type=int, default=None,
                   help="override the campaign's random seed")
    p.add_argument("--faults", default=None, metavar="PLAN.json",
                   help="inject faults from a plan/drill JSON file")
    p.add_argument("--ulm", default=None, metavar="PATH",
                   help="write the run's ULM event log to this file")
    p.add_argument("--nlv", action="store_true",
                   help="print the NLV lifeline plot")
    p.add_argument("--width", type=int, default=100)
    p.add_argument("--sanitize", action="store_true",
                   help="run with the concurrency sanitizer attached")
    p.add_argument("--alloc-stats", action="store_true",
                   help="log ALLOC_* allocator-cost events into the ULM")
    p.add_argument("--tiles", action="store_true",
                   help="tile-routed transport with delta transmission")
    p.add_argument("--tile-size", type=int, default=None, metavar="PX",
                   help="screen tile edge in pixels (default 32)")
    p.add_argument("--stripe", default=None, metavar="SPEC",
                   help="RAID-5 parity striping on the DPSS with "
                        "redundant k-of-n reads, e.g. '4+1' (hedged "
                        "repair) or '4+1:eager'")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the versioned result payload to this file")
    p.set_defaults(fn=cmd_campaign)

    p = sub.add_parser(
        "serve-sim", help="run a multi-viewer service campaign"
    )
    p.add_argument("name", nargs="?", default="sc99-multiviewer",
                   help="service campaign name (default: sc99-multiviewer)")
    p.add_argument("--viewers", type=int, default=None,
                   help="override the workload's viewer count")
    p.add_argument("--frames", type=int, default=None,
                   help="timesteps each session watches")
    p.add_argument("--scaled", action="store_true",
                   help="shrink the dataset for a fast demo")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the shared render cache")
    p.add_argument("--seed", type=int, default=None,
                   help="override the service run's random seed")
    p.add_argument("--ulm", default=None, metavar="PATH",
                   help="write the run's ULM event log to this file")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write service metrics as JSON to this file")
    p.add_argument("--alloc-stats", action="store_true",
                   help="log ALLOC_* allocator-cost events into the ULM")
    p.add_argument("--tiles", action="store_true",
                   help="tile-routed transport with delta transmission "
                        "and the tile-keyed shared cache")
    p.add_argument("--tile-size", type=int, default=None, metavar="PX",
                   help="screen tile edge in pixels (default 32)")
    p.add_argument("--stripe", default=None, metavar="SPEC",
                   help="full-world campaigns: RAID-5 parity striping "
                        "on the shared DPSS site, e.g. '4+1'")
    p.add_argument("--topology", default=None, metavar="NAME",
                   help="shard campaigns: serve over this named "
                        "multi-site topology (see 'visapult list')")
    p.add_argument("--flow-classes", choices=["on", "off"], default=None,
                   help="shard campaigns: aggregate same-profile "
                        "sessions into flow classes (on) or run the "
                        "per-session oracle allocator (off)")
    p.add_argument("--sessions", type=int, default=None,
                   help="shard campaigns: total offered sessions "
                        "(alias of --viewers)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "bench", help="run the performance benchmark suites"
    )
    p.add_argument("--suite", choices=["fluid", "render", "shard",
                                       "stripe", "kernels"],
                   default="fluid",
                   help="fluid: allocator speedups; render: tile wire "
                        "savings + compositing + orbit cache; shard: "
                        "flow-class aggregation vs per-session flows; "
                        "stripe: parity-read overhead + flaky-drill "
                        "p99 read latency vs the fault-free baseline; "
                        "kernels: vectorized raycast/raster/fairshare "
                        "vs scalar oracles + calendar-vs-heap events")
    p.add_argument("--quick", action="store_true",
                   help="small workloads (CI-sized; scaled e2e campaign)")
    p.add_argument("--no-e2e", action="store_true",
                   help="skip the end-to-end sc99-multiviewer benchmark "
                        "(fluid suite only)")
    p.add_argument("--output", default=None, metavar="PATH",
                   help="write results JSON (e.g. BENCH_fluid.json)")
    p.add_argument("--check", action="store_true",
                   help="fail if gated metrics regress >25%% vs baseline")
    p.add_argument("--baseline", default=None, metavar="PATH",
                   help="baseline floors JSON for --check (default: the "
                        "suite's benchmarks/perf baseline)")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "lint", help="check project invariants (VIS1xx rules)"
    )
    p.add_argument("paths", nargs="*",
                   help="files/dirs to lint (default: the repro package)")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser(
        "check",
        help="determinism & protocol-typestate analyzer (VIS2xx rules)",
    )
    p.add_argument("paths", nargs="*",
                   help="files/dirs to check (default: the repro package)")
    p.add_argument("--json", nargs="?", const="-", default=None,
                   metavar="PATH",
                   help="write the findings report as JSON "
                        "(default stdout)")
    p.add_argument("--sarif", default=None, metavar="PATH",
                   help="write a SARIF 2.1.0 report for PR annotation")
    p.add_argument("--baseline", default=None, metavar="PATH",
                   help="baseline findings file "
                        "(default: analysis/baseline.json when present)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore the baseline; every finding is new")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline from the current findings")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser("iperf", help="probe a simulated WAN path")
    p.add_argument("--wan", choices=["nton", "nton-tuned", "esnet",
                                     "scinet", "lan"], default="esnet")
    p.add_argument("--streams", type=int, default=1)
    p.add_argument("--megabytes", type=float, default=100.0)
    p.set_defaults(fn=cmd_iperf)

    p = sub.add_parser("artifacts", help="IBRAVR artifact sweep")
    p.add_argument("--angles", type=float, nargs="+",
                   default=[0.0, 8.0, 16.0, 30.0, 45.0])
    p.add_argument("--slabs", type=int, default=8)
    p.add_argument("--size", type=int, default=48)
    p.add_argument("--image-size", type=int, default=64)
    p.add_argument("--axis-switching", action="store_true")
    p.set_defaults(fn=cmd_artifacts)

    p = sub.add_parser("live", help="run the live localhost pipeline")
    p.add_argument("--pes", type=int, default=2)
    p.add_argument("--steps", type=int, default=3)
    p.add_argument("--size", type=int, default=32)
    p.add_argument("--image-size", type=int, default=128)
    p.add_argument("--overlapped", action="store_true")
    p.add_argument("--output", default=None,
                   help="write the final frame to this PPM path")
    p.set_defaults(fn=cmd_live)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
