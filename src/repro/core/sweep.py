"""Parameter sweeps over campaigns, with tabular output.

The paper's evaluation is a set of point measurements; a downstream
user of this reproduction usually wants curves (PE counts, WAN rates,
TCP windows). This module runs a family of campaign variants and
collects the per-run quantities into a small result table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence

from repro.core.campaign import CampaignConfig, run_campaign
from repro.core.report import CampaignResult


@dataclass
class SweepResult:
    """One sweep: the varied values and the resulting campaign results."""

    parameter: str
    values: List[Any]
    results: List[CampaignResult]
    metrics: Dict[str, List[float]] = field(default_factory=dict)

    def series(self, metric: str) -> List[tuple]:
        """(value, metric) pairs, e.g. for
        :func:`repro.netlogger.nlv.series_plot`. Non-numeric sweep
        values are enumerated by index."""
        ys = self.metrics[metric]
        xs = []
        for i, v in enumerate(self.values):
            xs.append(v if isinstance(v, (int, float)) else i)
        return list(zip(xs, ys))

    def table(self) -> str:
        """A fixed-width text table of every collected metric."""
        names = sorted(self.metrics)
        header = [self.parameter] + names
        rows = [header]
        for i, v in enumerate(self.values):
            rows.append(
                [str(v)] + [f"{self.metrics[m][i]:.3f}" for m in names]
            )
        widths = [
            max(len(r[c]) for r in rows) for c in range(len(header))
        ]
        lines = []
        for r_i, r in enumerate(rows):
            lines.append(
                "  ".join(cell.rjust(w) for cell, w in zip(r, widths))
            )
            if r_i == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)


#: metric name -> extractor over a CampaignResult
DEFAULT_METRICS: Dict[str, Callable[[CampaignResult], float]] = {
    "total_s": lambda r: r.total_time,
    "load_s": lambda r: r.mean_load,
    "render_s": lambda r: r.mean_render,
    "period_s": lambda r: r.seconds_per_timestep,
    "goodput_mbps": lambda r: r.load_throughput_mbps,
}


def sweep(
    base: CampaignConfig,
    parameter: str,
    values: Sequence[Any],
    *,
    metrics: Dict[str, Callable[[CampaignResult], float]] = None,
    configure: Callable[[CampaignConfig, Any], CampaignConfig] = None,
) -> SweepResult:
    """Run ``base`` once per value of ``parameter``.

    By default the parameter is set with ``with_changes``; pass
    ``configure`` for derived changes (e.g. a platform rebuild). Each
    variant gets a unique name so reports stay distinguishable.
    """
    if not values:
        raise ValueError("sweep needs at least one value")
    metric_fns = dict(DEFAULT_METRICS if metrics is None else metrics)
    results: List[CampaignResult] = []
    collected: Dict[str, List[float]] = {m: [] for m in metric_fns}
    for value in values:
        if configure is not None:
            cfg = configure(base, value)
        else:
            cfg = base.with_changes(**{parameter: value})
        cfg = cfg.with_changes(name=f"{base.name}[{parameter}={value}]")
        result = run_campaign(cfg)
        results.append(result)
        for m, fn in metric_fns.items():
            collected[m].append(float(fn(result)))
    return SweepResult(
        parameter=parameter,
        values=list(values),
        results=results,
        metrics=collected,
    )
