"""Shard-serving benchmark: flow-class aggregation vs per-session flows.

The tentpole claim of the sharded serving layer is that allocator cost
scales with the number of *flow classes*, not sessions: the
``sc99-serve10k`` campaign admits 10,000 sessions across four regions
and must finish in minutes of wall clock. This suite runs that
campaign twice -- once with flow-class aggregation, once with the
bitwise-pinned per-session oracle -- asserts the two agree (same
makespan, everything admitted), and gates on the wall-clock speedup.

Payload shape mirrors :mod:`repro.core.bench` so CI shares one
``check_floors`` gate::

    visapult bench --suite shard --quick --output BENCH_shard.json --check
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Tuple

from repro.core.bench import REGRESSION_TOLERANCE, check_floors

__all__ = [
    "bench_serve10k",
    "run_suite",
    "check_regression",
    "write_results",
    "summary",
]


def bench_serve10k(
    aggregate: bool, *, n_sessions: int
) -> Tuple[float, Dict[str, Any]]:
    """One timed sc99-serve10k run: (wall seconds, simulated facts).

    The wall clock rides separately from the facts dict so simulated
    quantities (makespan, admission counts) stay clean for
    deterministic comparison and reporting.
    """
    from repro.config import FlowClassConfig
    from repro.service.shard import ShardCampaign, run_shard_campaign

    config = ShardCampaign.sc99_serve10k(n_sessions=n_sessions)
    if not aggregate:
        config = config.with_changes(
            flow_classes=FlowClassConfig(enabled=False)
        )
    start = time.perf_counter()
    result = run_shard_campaign(config)
    wall = time.perf_counter() - start
    service = result.metrics.service
    return wall, {
        "makespan_s": result.total_time,
        "admitted": service.admitted,
        "completed": service.completed,
        "rejected": service.rejected,
        "flows_touched": result.alloc.get("flows_touched", 0),
    }


def _assert_parity(
    oracle: Dict[str, Any], aggregate: Dict[str, Any], n_sessions: int
) -> None:
    """The suite's correctness gate: same simulated run, everyone in."""
    if aggregate["makespan_s"] != oracle["makespan_s"]:
        raise AssertionError(
            f"flow-class aggregation changed the simulated makespan: "
            f"{aggregate['makespan_s']} != {oracle['makespan_s']}"
        )
    if aggregate["admitted"] != n_sessions:
        raise AssertionError(
            f"serve10k must admit every session: "
            f"{aggregate['admitted']} of {n_sessions}"
        )


def run_suite(*, quick: bool = False) -> Dict[str, Any]:
    """Run the shard suite; returns the BENCH_shard payload."""
    n_sessions = 2000 if quick else 10000
    oracle_wall, oracle = bench_serve10k(False, n_sessions=n_sessions)
    agg_wall, aggregate = bench_serve10k(True, n_sessions=n_sessions)
    _assert_parity(oracle, aggregate, n_sessions)
    speedup = oracle_wall / agg_wall if agg_wall > 0 else 0.0
    return {
        "suite": "shard-serving",
        "quick": quick,
        "benchmarks": {
            "serve10k": {
                "sessions": n_sessions,
                "oracle": dict(oracle, wall_s=round(oracle_wall, 4)),
                "aggregate": dict(aggregate, wall_s=round(agg_wall, 4)),
                "speedup": round(speedup, 3),
            }
        },
    }


def _speedups(results: Dict[str, Any]) -> Dict[str, float]:
    return {
        name: entry["speedup"]
        for name, entry in results.get("benchmarks", {}).items()
    }


def check_regression(
    results: Dict[str, Any],
    baseline: Dict[str, float],
    *,
    tolerance: float = REGRESSION_TOLERANCE,
) -> List[str]:
    """Gate the measured speedups against the checked-in floors."""
    return check_floors(_speedups(results), baseline, tolerance=tolerance)


def write_results(results: Dict[str, Any], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")


def summary(results: Dict[str, Any]) -> str:
    lines = ["shard benchmarks (per-session oracle -> flow classes):"]
    for name, entry in results.get("benchmarks", {}).items():
        oracle = entry["oracle"]
        aggregate = entry["aggregate"]
        lines.append(
            f"  {name:22s} {oracle['wall_s']:8.3f}s -> "
            f"{aggregate['wall_s']:8.3f}s  ({entry['speedup']:.2f}x, "
            f"{entry['sessions']} sessions, "
            f"{aggregate['flows_touched']} vs "
            f"{oracle['flows_touched']} flows touched)"
        )
    return "\n".join(lines)
