"""The section 4.3 analytic performance model.

"Let R be the time spent in each PE performing rendering for each of N
timesteps of data, and let L be the time spent by each PE loading data
for each time step. The amount of time, Ts, required for N time steps'
worth of data using the serial implementation is Ts = N x (L + R). In
contrast, the time required for N time steps using an overlapped
implementation is To = N x max(L, R) + min(L, R)."
"""

from __future__ import annotations

from repro.util.validation import check_non_negative, check_positive


def serial_time(n_timesteps: int, load: float, render: float) -> float:
    """Ts = N * (L + R)."""
    _check(n_timesteps, load, render)
    return n_timesteps * (load + render)


def overlapped_time(n_timesteps: int, load: float, render: float) -> float:
    """To = N * max(L, R) + min(L, R)."""
    _check(n_timesteps, load, render)
    return n_timesteps * max(load, render) + min(load, render)


def overlap_speedup(n_timesteps: int, load: float, render: float) -> float:
    """Ts / To for given N, L, R."""
    to = overlapped_time(n_timesteps, load, render)
    if to == 0:
        return 1.0
    return serial_time(n_timesteps, load, render) / to


def theoretical_speedup_limit(n_timesteps: int) -> float:
    """The L == R limit: Ts/To = 2N / (N + 1), approaching 2.

    "If we assume that L and R are approximately equal, then the
    theoretical speedup realized using an overlapped implementation
    over one that is serial is Ts/To, or 2N/(N+1)."
    """
    if n_timesteps < 1:
        raise ValueError("n_timesteps must be >= 1")
    return 2.0 * n_timesteps / (n_timesteps + 1.0)


def transfer_time(nbytes: float, rate: float) -> float:
    """Seconds to move ``nbytes`` at ``rate`` bytes/second.

    The section 5 arithmetic: the 265-timestep, 41.4 GB dataset takes
    ~minutes over NTON versus ~44 minutes over ESnet, and a 5
    timestep/second target needs roughly an OC-192.
    """
    check_non_negative("nbytes", nbytes)
    check_positive("rate", rate)
    return nbytes / rate


def _check(n_timesteps: int, load: float, render: float) -> None:
    if n_timesteps < 1:
        raise ValueError("n_timesteps must be >= 1")
    check_non_negative("load", load)
    check_non_negative("render", render)
