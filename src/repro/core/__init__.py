"""Campaign orchestration: the paper's system, wired end to end.

This package is the reproduction's "primary contribution" layer: it
assembles the substrates (WAN topologies, DPSS sites, compute
platforms, the back end and viewer) into the named experiments the
paper reports, runs them on the discrete-event simulator, and reduces
the NetLogger stream into the figures' quantities.

Entry points:

- :class:`~repro.core.campaign.CampaignConfig` with named constructors
  for each of the paper's runs (``lan_e4500``, ``nton_cplant``,
  ``esnet_anl_smp``, ``sc99_cosmology``, ``sc99_showfloor``, ...);
- :func:`~repro.core.campaign.run_campaign` -> a
  :class:`~repro.core.report.CampaignResult`;
- :mod:`~repro.core.model` -- the section 4.3 analytic overlap model
  (``Ts = N(L+R)``, ``To = N max(L,R) + min(L,R)``).
"""

from repro.core.model import (
    overlapped_time,
    overlap_speedup,
    serial_time,
    theoretical_speedup_limit,
    transfer_time,
)
from repro.core.platforms import PlatformSpec, Platforms, WanSpec, Wans
from repro.core.campaign import (
    CampaignConfig,
    build_session,
    campaign_names,
    named_campaign,
    run_campaign,
)
from repro.core.sweep import DEFAULT_METRICS, SweepResult, sweep
from repro.core.report import CampaignResult

__all__ = [
    "serial_time",
    "overlapped_time",
    "overlap_speedup",
    "theoretical_speedup_limit",
    "transfer_time",
    "PlatformSpec",
    "Platforms",
    "WanSpec",
    "Wans",
    "CampaignConfig",
    "build_session",
    "campaign_names",
    "named_campaign",
    "run_campaign",
    "CampaignResult",
    "DEFAULT_METRICS",
    "SweepResult",
    "sweep",
]
