"""Reducing a campaign run into the paper's reported quantities."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict

import numpy as np

from repro.netlogger.analysis import EventLog
from repro.util.units import bytes_per_sec_to_mbps, fmt_seconds

if TYPE_CHECKING:  # pragma: no cover
    from repro.backend.sim import SimBackEnd
    from repro.core.campaign import CampaignConfig
    from repro.netlogger.daemon import NetLogDaemon
    from repro.netsim.topology import Network
    from repro.viewer.sim import SimViewer


@dataclass
class CampaignResult:
    """Derived measurements of one campaign run.

    ``mean_load``/``mean_render`` are the per-frame makespans across
    PEs (the L and R the paper reads off its NLV plots);
    ``load_throughput_mbps`` is the aggregate DPSS->back end goodput
    while loads were in flight.
    """

    config: "CampaignConfig"
    total_time: float
    n_frames: int
    mean_load: float
    std_load: float
    mean_render: float
    std_render: float
    load_throughput_mbps: float
    wan_capacity_mbps: float
    backend_to_viewer_bytes: float
    dpss_to_backend_bytes: float
    viewer_frames_complete: int
    event_log: EventLog = field(repr=False)
    per_frame_load: Dict[int, float] = field(default_factory=dict, repr=False)
    per_frame_render: Dict[int, float] = field(default_factory=dict, repr=False)
    #: sampled (time, fraction-of-usable-capacity) on the WAN link --
    #: the bandwidth-over-time view NLV plots alongside the lifelines
    wan_utilization_series: list = field(default_factory=list, repr=False)
    #: concurrency-sanitizer findings when the campaign ran with
    #: ``sanitize=True`` (empty for clean or unsanitized runs)
    sanitizer_findings: list = field(default_factory=list, repr=False)
    #: frames at least one PE completed with stale/absent data because
    #: a DPSS read came up short under injected faults
    degraded_frames: int = 0
    #: DPSS read attempts beyond the first, summed across PEs
    retries: int = 0
    #: hedged duplicate reads issued to replicas
    hedges: int = 0
    #: span from the first injected fault to the last FAULT_*/RETRY_*
    #: event -- how long the run spent reacting to the fault schedule
    recovery_seconds: float = 0.0
    #: tile mode: full tiles / delta references shipped to the viewer
    #: (both zero for whole-slab runs)
    tiles_full: int = 0
    tiles_ref: int = 0
    #: tile mode: texture bytes delta references kept off the WAN
    tile_bytes_saved: float = 0.0
    #: striped mode: hedged duplicates torn down before completing
    #: (these never count as retries)
    hedges_abandoned: int = 0
    #: striped mode: blocks rebuilt from parity instead of re-read
    reconstructions: int = 0
    #: striped mode: redundancy bytes (parity + fillers) on the wire
    parity_bytes: float = 0.0
    #: striped mode: redundant shares cancelled once coverage was met
    stripe_cancels: int = 0
    #: p99 of per-read DPSS latency across all PEs and frames
    read_p99: float = 0.0

    @classmethod
    def from_run(
        cls,
        config: "CampaignConfig",
        network: "Network",
        backend: "SimBackEnd",
        viewer: "SimViewer",
        daemon: "NetLogDaemon",
    ) -> "CampaignResult":
        log = EventLog(daemon.events)
        per_frame_load = log.per_frame_load_times()
        per_frame_render = log.per_frame_render_times()
        # L and R are per-PE span durations, as read off the NLV plots
        # (per-frame makespans desynchronise in overlapped mode).
        loads = np.array(
            [s.duration for s in log.load_spans()] or [0.0]
        )
        renders = np.array(
            [s.duration for s in log.render_spans()] or [0.0]
        )

        # Aggregate goodput while data was moving: bytes loaded over
        # the union span of load activity per frame, averaged.
        bytes_per_frame = backend.meta.bytes_per_timestep
        load_rates = [
            bytes_per_frame / t for t in per_frame_load.values() if t > 0
        ]
        load_mbps = (
            float(np.mean([bytes_per_sec_to_mbps(r) for r in load_rates]))
            if load_rates
            else 0.0
        )

        wan_series = []
        wan_link = network.links.get(config.wan.name)
        if wan_link is not None:
            wan_series = wan_link.resource.utilization_timeseries()

        inject_ts = [
            e.ts for e in log.events if e.event == "FAULT_INJECT"
        ]
        fault_ts = [
            e.ts for e in log.events
            if e.event.startswith(("FAULT_", "RETRY_"))
        ]
        recovery = max(fault_ts) - min(inject_ts) if inject_ts else 0.0

        return cls(
            config=config,
            total_time=backend.timing.total_time,
            n_frames=config.n_timesteps,
            mean_load=float(loads.mean()),
            std_load=float(loads.std()),
            mean_render=float(renders.mean()),
            std_render=float(renders.std()),
            load_throughput_mbps=load_mbps,
            wan_capacity_mbps=bytes_per_sec_to_mbps(
                config.wan.usable_capacity
            ),
            backend_to_viewer_bytes=backend.timing.bytes_sent_to_viewer,
            dpss_to_backend_bytes=backend.timing.bytes_loaded,
            viewer_frames_complete=viewer.complete_frames(backend.n_pes),
            event_log=log,
            per_frame_load=per_frame_load,
            per_frame_render=per_frame_render,
            wan_utilization_series=wan_series,
            degraded_frames=len(backend.timing.degraded_frames),
            retries=backend.timing.retries,
            hedges=backend.timing.hedges,
            recovery_seconds=recovery,
            tiles_full=backend.timing.tiles_full,
            tiles_ref=backend.timing.tiles_ref,
            tile_bytes_saved=backend.timing.tile_bytes_saved,
            hedges_abandoned=backend.timing.hedges_abandoned,
            reconstructions=backend.timing.reconstructions,
            parity_bytes=backend.timing.parity_bytes,
            stripe_cancels=backend.timing.stripe_cancels,
            read_p99=(
                float(np.percentile(backend.timing.read_seconds, 99))
                if backend.timing.read_seconds
                else 0.0
            ),
        )

    # -- derived -----------------------------------------------------------
    @property
    def wan_utilization(self) -> float:
        """Load throughput as a fraction of the WAN line rate."""
        line_mbps = bytes_per_sec_to_mbps(self.config.wan.rate)
        return self.load_throughput_mbps / line_mbps if line_mbps else 0.0

    @property
    def traffic_asymmetry(self) -> float:
        """DPSS->back end bytes over back end->viewer bytes.

        "the majority of communication was between the DPSS and the
        Visapult back end, with the link between the Visapult back end
        and viewer requiring much less bandwidth" (section 4.1).
        """
        if self.backend_to_viewer_bytes == 0:
            return float("inf")
        return self.dpss_to_backend_bytes / self.backend_to_viewer_bytes

    @property
    def seconds_per_timestep(self) -> float:
        """Average pipeline period (the section 5 "new timestep every
        N seconds" quantity)."""
        return self.total_time / self.n_frames if self.n_frames else 0.0

    def metrics_dict(self) -> Dict[str, float]:
        """Flat JSON-ready numbers for the versioned result payload
        (:func:`repro.service.metrics.result_payload`)."""
        return {
            "total_time": self.total_time,
            "n_frames": self.n_frames,
            "seconds_per_timestep": self.seconds_per_timestep,
            "mean_load": self.mean_load,
            "std_load": self.std_load,
            "mean_render": self.mean_render,
            "std_render": self.std_render,
            "load_throughput_mbps": self.load_throughput_mbps,
            "wan_capacity_mbps": self.wan_capacity_mbps,
            "wan_utilization": self.wan_utilization,
            "backend_to_viewer_bytes": self.backend_to_viewer_bytes,
            "dpss_to_backend_bytes": self.dpss_to_backend_bytes,
            "viewer_frames_complete": self.viewer_frames_complete,
            "degraded_frames": self.degraded_frames,
            "retries": self.retries,
            "hedges": self.hedges,
            "recovery_seconds": self.recovery_seconds,
            "tiles_full": self.tiles_full,
            "tiles_ref": self.tiles_ref,
            "tile_bytes_saved": self.tile_bytes_saved,
            "hedges_abandoned": self.hedges_abandoned,
            "reconstructions": self.reconstructions,
            "parity_bytes": self.parity_bytes,
            "stripe_cancels": self.stripe_cancels,
            "read_p99": self.read_p99,
        }

    def summary(self) -> str:
        """A human-readable result block."""
        cfg = self.config
        lines = [
            f"campaign {cfg.name}: {cfg.n_pes} PEs on {cfg.platform.name}, "
            f"{'overlapped' if cfg.overlapped else 'serial'}, "
            f"{self.n_frames} timesteps",
            f"  total time        : {fmt_seconds(self.total_time)}"
            f" ({fmt_seconds(self.seconds_per_timestep)}/timestep)",
            f"  load (L)          : {self.mean_load:.2f} s/frame"
            f" +- {self.std_load:.2f}",
            f"  render (R)        : {self.mean_render:.2f} s/frame"
            f" +- {self.std_render:.2f}",
            f"  DPSS->BE goodput  : {self.load_throughput_mbps:.0f} Mbps"
            f" ({self.wan_utilization:.0%} of {cfg.wan.name} line rate)",
            f"  BE->viewer bytes  : "
            f"{self.backend_to_viewer_bytes / 1e6:.1f} MB"
            f" (asymmetry {self.traffic_asymmetry:.0f}x)",
            f"  viewer frames     : {self.viewer_frames_complete}"
            f"/{self.n_frames} complete",
        ]
        if getattr(cfg, "faults", None) is not None:
            lines.append(
                f"  faults            : {self.degraded_frames} degraded"
                f" frame(s), {self.retries} retries, {self.hedges} hedges,"
                f" recovery {fmt_seconds(self.recovery_seconds)}"
            )
        if getattr(cfg, "stripe", None) is not None and cfg.stripe.enabled:
            lines.append(
                f"  stripe {cfg.stripe.spec():<11}: "
                f"{self.reconstructions} reconstruction(s),"
                f" {self.parity_bytes / 1e6:.1f} MB redundancy,"
                f" {self.stripe_cancels} cancel(s),"
                f" p99 read {self.read_p99:.2f} s"
            )
        if self.tiles_full or self.tiles_ref:
            total = self.tiles_full + self.tiles_ref
            ref_ratio = self.tiles_ref / total if total else 0.0
            lines.append(
                f"  tile delta        : {self.tiles_full} full /"
                f" {self.tiles_ref} ref tiles ({ref_ratio:.0%} referenced,"
                f" {self.tile_bytes_saved / 1e6:.1f} MB saved)"
            )
        return "\n".join(lines)
