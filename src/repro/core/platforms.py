"""Calibrated platform and WAN specifications.

Every free parameter of the simulation (NIC ingest limits, render
rates, link efficiencies, TCP windows, RTTs) is pinned here, in one
place, against the paper's reported numbers (DESIGN.md section 5):

========================= ==========================================
Paper observation          Calibration
========================= ==========================================
433 Mbps over NTON =       NTON link efficiency 0.70 on OC-12
~70% of OC-12 (Fig 10)
DPSS raw: 980 Mbps LAN /    server disk pools 4x14 MB/s; tuned-WAN
570 Mbps WAN (section 2)    efficiency 0.92
SC99: 250 Mbps NTON,        1999-era path efficiency 0.40; SciNet
150 Mbps show floor         shared: gigE at 0.60 minus 450 Mbps of
(section 4.1)               competing show-floor traffic
E4500: L ~= 15 s/160 MB     E4500 host ingest 86 Mbps (336 MHz
(Figs 12-13)                UltraSPARC-II TCP stack + single NIC)
E4500: R ~= 12 s/slab       render 4.4e5 voxels/s per 336 MHz CPU
CPlant: R ~= 8.5 s on 4     render 1.23e6 voxels/s per 500 MHz
PEs, halves on 8 (Fig 14)   Alpha node
ESnet: iperf ~100 Mbps,     OC-12 at effective 0.21 (shared), RTT
Visapult ~128 Mbps          50 ms, 640 KiB windows: single stream
(Figs 16-17)                caps at ~102 Mbps, 8 streams fill 130
Onyx2 overlapped frame      render 7.5e5 voxels/s per Onyx2 CPU
~10 s (section 5)           (R ~= 7 s < L ~= 10 s)
========================= ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import KIB, MB, OC12, mbps
from repro.volren.renderer import RenderCostModel


@dataclass(frozen=True)
class PlatformSpec:
    """A back end compute platform."""

    name: str
    #: one host per PE (cluster) vs one shared host (SMP)
    cluster: bool
    #: NIC ingest limit per host, bytes/s (per node for clusters)
    nic_rate: float
    #: CPUs per host (1 for cluster nodes)
    n_cpus: int
    #: software volume rendering throughput, voxels/s per CPU
    render_voxels_per_sec: float
    #: single-CPU nodes: reader thread and render contend (Appendix B)
    shared_cpu_io: bool = False
    #: overlapped mode: NIC derate while the CPU also renders
    overlap_ingest_factor: float = 1.0
    #: overlapped mode: render thread's CPU share while ingest runs
    overlap_render_share: float = 1.0
    #: per-frame load/render variability in overlapped mode
    overlap_jitter_cv: float = 0.0

    def render_cost_model(self) -> RenderCostModel:
        """Cost model for one PE rendering its slab."""
        return RenderCostModel(
            voxels_per_second=self.render_voxels_per_sec,
            per_frame_overhead=0.05,
        )


class Platforms:
    """The paper's compute platforms."""

    #: Sun E4500: 8 x 336 MHz UltraSPARC-II, one shared gigE NIC whose
    #: effective host throughput is far below line rate (Figs 12-13).
    E4500 = PlatformSpec(
        name="sun-e4500",
        cluster=False,
        nic_rate=mbps(86.0),
        n_cpus=8,
        render_voxels_per_sec=4.4e5,
    )

    #: Sandia CPlant: Linux/Alpha cluster, 500 MHz single-CPU nodes,
    #: per-node external NICs with interrupt-limited ingest; reader
    #: and render share the one CPU (section 4.4.1).
    CPLANT = PlatformSpec(
        name="cplant",
        cluster=True,
        nic_rate=mbps(120.0),
        n_cpus=1,
        render_voxels_per_sec=1.23e6,
        shared_cpu_io=True,
        overlap_ingest_factor=0.35,
        overlap_render_share=0.85,
        overlap_jitter_cv=0.30,
    )

    #: ANL's 16-CPU SGI Onyx2: plenty of CPUs for reader threads, one
    #: shared gigE interface for all PEs (section 4.4.2).
    ONYX2 = PlatformSpec(
        name="sgi-onyx2",
        cluster=False,
        nic_rate=mbps(600.0),
        n_cpus=16,
        render_voxels_per_sec=7.5e5,
    )

    #: LBL-booth 8-node Alpha Linux cluster at SC99.
    BABEL = PlatformSpec(
        name="babel-cluster",
        cluster=True,
        nic_rate=mbps(120.0),
        n_cpus=1,
        render_voxels_per_sec=1.0e6,
        shared_cpu_io=True,
        overlap_ingest_factor=0.35,
        overlap_render_share=0.85,
        overlap_jitter_cv=0.30,
    )


@dataclass(frozen=True)
class WanSpec:
    """A WAN path between the DPSS site and the compute site."""

    name: str
    rate: float
    #: one-way propagation latency, seconds
    latency: float
    efficiency: float = 1.0
    background_rate: float = 0.0
    #: per-stream TCP receive window, bytes
    tcp_window: float = 1024 * KIB

    @property
    def usable_capacity(self) -> float:
        """Application-visible capacity in bytes/second."""
        return max(self.rate * self.efficiency - self.background_rate, 0.0)


class Wans:
    """The paper's network paths."""

    #: NTON LBL<->SNL-CA in 2000: OC-12, short optical path; the
    #: April campaign sustained ~70% of line rate (Fig 10).
    NTON_2000 = WanSpec(
        name="nton-2000", rate=OC12, latency=0.0025, efficiency=0.70
    )

    #: The same fibre under tuned, DPSS-only conditions: the 570 Mbps
    #: raw block-service figure of section 2.
    NTON_TUNED = WanSpec(
        name="nton-tuned", rate=OC12, latency=0.0025, efficiency=0.92
    )

    #: NTON as exercised by the pre-streamlining SC99 implementation
    #: (250 Mbps, section 4.1).
    NTON_1999 = WanSpec(
        name="nton-1999", rate=OC12, latency=0.0025, efficiency=0.40
    )

    #: SciNet, the SC99 show-floor network: gigabit but heavily shared
    #: (150 Mbps achieved, section 4.1).
    SCINET99 = WanSpec(
        name="scinet99",
        rate=mbps(1000.0),
        latency=0.012,
        efficiency=0.60,
        background_rate=mbps(450.0),
    )

    #: ESnet LBL<->ANL: OC-12 backbone but shared and long-haul;
    #: ~100 Mbps to a single iperf stream, ~130 Mbps to parallel
    #: streams (section 4.4.2).
    ESNET = WanSpec(
        name="esnet",
        rate=OC12,
        latency=0.025,
        efficiency=0.21,
        tcp_window=640 * KIB,
    )

    #: A dedicated gigabit LAN (the E4500 tests of section 4.3).
    LAN_GIGE = WanSpec(
        name="lan-gige", rate=mbps(1000.0), latency=0.0001, efficiency=0.95
    )


#: The DPSS deployment the paper describes: four block servers, each a
#: commodity box with several disks per controller; "a four-server
#: DPSS ... can thus deliver throughput of over 150 megabytes per
#: second by providing parallel access to 15-20 disks" (section 3.5).
DPSS_N_SERVERS = 4
DPSS_DISKS_PER_SERVER = 5
DPSS_DISK_RATE = 8 * MB  # per disk; 40 MB/s pool per server
DPSS_SERVER_NIC = mbps(1000.0)
