"""Allocator performance benchmarks (the ``visapult bench`` suite).

Three microbenchmarks drive a :class:`~repro.simcore.fluid.FluidScheduler`
directly with the event mix that dominates real campaigns (TCP-style
cap churn, transfer completions), once with the incremental
component-partitioned allocator and once with the fresh-recompute
oracle (``incremental=False``). The two modes produce bitwise
identical simulations -- the parity suite pins that -- so the wall
clock ratio is a pure measure of the allocator hot path:

- ``disjoint_sessions``: >= 8 viewer sessions on disjoint last-mile
  components, the serving-layer shape incremental allocation targets;
- ``one_giant_component``: the same flow count coupled through one
  backbone, the worst case where partitioning cannot help and only
  spec caching does;
- ``churn_service``: disjoint sessions with short transfers completing
  and resubmitting, exercising component-cache invalidation.

The end-to-end benchmark times the ``sc99-multiviewer`` registry
campaign in both modes. Results land in ``BENCH_fluid.json``;
``benchmarks/perf/baseline.json`` pins the speedups CI guards against
(ratios, not absolute seconds, so they are hardware-robust).
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Generator, List, Optional

from repro.simcore.env import Environment
from repro.simcore.fluid import FluidResource, FluidScheduler, FluidTask

#: regression gate: measured speedup must stay within this fraction of
#: the checked-in baseline speedup.
REGRESSION_TOLERANCE = 0.25


def _session_resources(
    sched: FluidScheduler, session: int, *, backbone: Optional[FluidResource]
) -> List[FluidResource]:
    """A last-mile path: source NIC, (optional shared backbone), link, NIC."""
    path = [
        sched.add_resource(FluidResource(f"nic-src{session}", 1.25e9)),
        sched.add_resource(FluidResource(f"last-mile{session}", 5.0e8)),
        sched.add_resource(FluidResource(f"nic-dst{session}", 1.25e9)),
    ]
    if backbone is not None:
        path.insert(1, backbone)
    return path


def _cap_churner(
    env: Environment,
    sched: FluidScheduler,
    tasks: List[FluidTask],
    *,
    ticks: int,
    dt: float,
) -> Generator:
    """TCP-window-style cap churn: one task per tick, sawtooth caps."""
    for tick in range(ticks):
        yield env.timeout(dt)
        task = tasks[tick % len(tasks)]
        cap = 1.0e6 * float(2 ** (tick % 10))
        sched.set_cap(task, cap)


def bench_disjoint_sessions(
    incremental: bool, *, n_sessions: int = 8, streams: int = 4,
    ticks: int = 400,
) -> float:
    """Cap churn across ``n_sessions`` disjoint last-mile components."""
    env = Environment()
    sched = FluidScheduler(env, incremental=incremental)
    tasks: List[FluidTask] = []
    for s in range(n_sessions):
        path = _session_resources(sched, s, backbone=None)
        usage = {res: 1.0 for res in path}
        for k in range(streams):
            task = FluidTask(f"s{s}w{k}", work=1.0e15, usage=usage)
            sched.submit(task)
            tasks.append(task)
        session_tasks = tasks[-streams:]
        env.process(
            _cap_churner(env, sched, session_tasks, ticks=ticks, dt=0.01)
        )
    start = time.perf_counter()
    env.run(until=ticks * 0.01 + 1.0)
    return time.perf_counter() - start


def bench_one_giant_component(
    incremental: bool, *, n_sessions: int = 8, streams: int = 4,
    ticks: int = 400,
) -> float:
    """The same churn with every session coupled through one backbone."""
    env = Environment()
    sched = FluidScheduler(env, incremental=incremental)
    backbone = sched.add_resource(FluidResource("backbone", 2.5e9))
    tasks: List[FluidTask] = []
    for s in range(n_sessions):
        path = _session_resources(sched, s, backbone=backbone)
        usage = {res: 1.0 for res in path}
        for k in range(streams):
            task = FluidTask(f"s{s}w{k}", work=1.0e15, usage=usage)
            sched.submit(task)
            tasks.append(task)
        session_tasks = tasks[-streams:]
        env.process(
            _cap_churner(env, sched, session_tasks, ticks=ticks, dt=0.01)
        )
    start = time.perf_counter()
    env.run(until=ticks * 0.01 + 1.0)
    return time.perf_counter() - start


def bench_churn_service(
    incremental: bool, *, n_sessions: int = 8, streams: int = 4,
    transfers: int = 60,
) -> float:
    """Short transfers arriving/completing on disjoint components.

    Every completion and resubmission invalidates the component cache,
    so this measures the allocator under topology churn, not just cap
    churn.
    """
    env = Environment()
    sched = FluidScheduler(env, incremental=incremental)

    def stream_proc(usage: Dict[FluidResource, float], name: str) -> Generator:
        for n in range(transfers):
            task = FluidTask(name, work=2.0e7, usage=usage, cap=1.0e8)
            yield sched.submit(task)
            sched.set_cap(task, 0.0)  # harmless post-completion no-op
            yield env.timeout(0.002)

    for s in range(n_sessions):
        path = _session_resources(sched, s, backbone=None)
        usage = {res: 1.0 for res in path}
        for k in range(streams):
            env.process(stream_proc(usage, f"c{s}w{k}"))
    start = time.perf_counter()
    env.run()
    return time.perf_counter() - start


def bench_e2e_multiviewer(
    incremental: bool, *, scaled: bool = False
) -> Dict[str, float]:
    """Wall-clock the sc99-multiviewer service campaign end to end."""
    import repro.simcore.fluid as fluid
    from repro.core.campaign import named_campaign
    from repro.service.manager import SessionManager

    config = named_campaign("sc99-multiviewer")
    if scaled:
        config = config.with_changes(
            workload=config.workload.with_changes(n_viewers=4),
            base=config.base.with_changes(
                n_timesteps=2, shape=(160, 64, 64), dataset_timesteps=8
            ),
        )
    previous = fluid.DEFAULT_INCREMENTAL
    fluid.DEFAULT_INCREMENTAL = incremental
    try:
        manager = SessionManager(config)
        start = time.perf_counter()
        done = manager.run()
        manager.net.run(until=done)
        wall = time.perf_counter() - start
    finally:
        fluid.DEFAULT_INCREMENTAL = previous
    stats = manager.net.sched.stats
    return {
        "wall_s": wall,
        "sched_events": float(stats.events),
        "events_per_s": stats.events / wall if wall > 0 else 0.0,
        "components_solved": float(stats.components_solved),
        "flows_touched": float(stats.flows_touched),
        "wakes_scheduled": float(stats.wakes_scheduled),
        "stale_wakes": float(stats.stale_wakes),
    }


def _pair(bench, **kwargs: Any) -> Dict[str, float]:
    oracle = bench(False, **kwargs)
    incremental = bench(True, **kwargs)
    return {
        "oracle_s": round(oracle, 4),
        "incremental_s": round(incremental, 4),
        "speedup": round(oracle / incremental, 3) if incremental > 0 else 0.0,
    }


def run_suite(*, quick: bool = False, e2e: bool = True) -> Dict[str, Any]:
    """Run the full benchmark suite; returns the BENCH_fluid payload."""
    micro_kwargs: Dict[str, Any] = (
        {"n_sessions": 8, "streams": 2, "ticks": 120}
        if quick
        else {"n_sessions": 8, "streams": 4, "ticks": 400}
    )
    churn_kwargs: Dict[str, Any] = (
        {"n_sessions": 8, "streams": 2, "transfers": 20}
        if quick
        else {"n_sessions": 8, "streams": 4, "transfers": 60}
    )
    results: Dict[str, Any] = {
        "suite": "fluid-allocator",
        "quick": quick,
        "benchmarks": {
            "disjoint_sessions": {
                **micro_kwargs,
                **_pair(bench_disjoint_sessions, **micro_kwargs),
            },
            "one_giant_component": {
                **micro_kwargs,
                **_pair(bench_one_giant_component, **micro_kwargs),
            },
            "churn_service": {
                **churn_kwargs,
                **_pair(bench_churn_service, **churn_kwargs),
            },
        },
    }
    if e2e:
        oracle = bench_e2e_multiviewer(False, scaled=quick)
        incremental = bench_e2e_multiviewer(True, scaled=quick)
        speedup = (
            oracle["wall_s"] / incremental["wall_s"]
            if incremental["wall_s"] > 0
            else 0.0
        )
        results["e2e"] = {
            "campaign": "sc99-multiviewer",
            "scaled": quick,
            "oracle": oracle,
            "incremental": incremental,
            "speedup": round(speedup, 3),
        }
    return results


def _speedups(results: Dict[str, Any]) -> Dict[str, float]:
    speedups = {
        name: entry["speedup"]
        for name, entry in results.get("benchmarks", {}).items()
    }
    if "e2e" in results:
        speedups["e2e"] = results["e2e"]["speedup"]
    return speedups


def check_floors(
    measured: Dict[str, float],
    baseline: Dict[str, float],
    *,
    tolerance: float = REGRESSION_TOLERANCE,
    what: str = "speedup",
    unit: str = "x",
) -> List[str]:
    """Gate measured higher-is-better metrics against baseline floors.

    Returns a list of failure descriptions (empty means every metric
    stayed within ``tolerance`` of its floor). Shared by the fluid and
    render suites; both gate on ratios, so the check is insensitive to
    how fast the host happens to be.
    """
    failures = []
    for name, floor in baseline.items():
        got = measured.get(name)
        if got is None:
            failures.append(
                f"{name}: no measurement (baseline {floor}{unit})"
            )
        elif got < floor * (1.0 - tolerance):
            failures.append(
                f"{name}: {what} {got:.2f}{unit} fell more than "
                f"{tolerance:.0%} below baseline {floor}{unit}"
            )
    return failures


def check_regression(
    results: Dict[str, Any],
    baseline: Dict[str, float],
    *,
    tolerance: float = REGRESSION_TOLERANCE,
) -> List[str]:
    """Compare measured speedups against the checked-in baseline.

    Baselines are speedup *ratios*, so the gate is insensitive to how
    fast the host happens to be.
    """
    return check_floors(_speedups(results), baseline, tolerance=tolerance)


def write_results(results: Dict[str, Any], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")


def summary(results: Dict[str, Any]) -> str:
    lines = ["allocator benchmarks (oracle -> incremental):"]
    for name, entry in results.get("benchmarks", {}).items():
        lines.append(
            f"  {name:22s} {entry['oracle_s']:8.3f}s -> "
            f"{entry['incremental_s']:8.3f}s  ({entry['speedup']:.2f}x)"
        )
    if "e2e" in results:
        e2e = results["e2e"]
        lines.append(
            f"  {'e2e ' + e2e['campaign']:22s} "
            f"{e2e['oracle']['wall_s']:8.3f}s -> "
            f"{e2e['incremental']['wall_s']:8.3f}s  ({e2e['speedup']:.2f}x, "
            f"{e2e['incremental']['events_per_s']:.0f} sched events/s)"
        )
    return "\n".join(lines)
