"""Stripe benchmark: parity-read overhead and flaky-drill tail latency.

The tentpole claim of the parity-striped DPSS is that a slow or
crashed server costs a reconstruction, not a timeout+retry round
trip: under the ``sc99-flaky`` drill the p99 DPSS read latency must
stay within 25% of the *fault-free unstriped* baseline, where the
unstriped path pays multi-second retry tails. This suite runs the
drill campaign four ways -- fault-free and flaky, striped and
unstriped -- plus a single-server slowburn that must be fully masked
by reconstruction, and gates on three higher-is-better ratios:

- ``tail_containment`` -- fault-free unstriped p99 over flaky striped
  p99 (the acceptance criterion, additionally hard-asserted at the
  25% bound),
- ``tail_speedup`` -- flaky unstriped p99 over flaky striped p99 (the
  reconstruct-instead-of-retry win), and
- ``clean_overhead`` -- fault-free unstriped p99 over fault-free
  striped p99 (hedged reads must be free when nothing fails).

Payload shape mirrors :mod:`repro.core.bench` so CI shares one
``check_floors`` gate::

    visapult bench --suite stripe --quick --output BENCH_stripe.json --check
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.core.bench import REGRESSION_TOLERANCE, check_floors

__all__ = [
    "bench_drill",
    "run_suite",
    "check_regression",
    "write_results",
    "summary",
]

#: the acceptance bound: flaky striped p99 vs fault-free unstriped p99
TAIL_BOUND = 1.25


def bench_drill(
    *,
    striped: bool,
    faults: str = "flaky",
    n_timesteps: int = 6,
) -> Dict[str, Any]:
    """One sc99-flaky drill run; returns its simulated read facts.

    ``faults`` picks the schedule: ``"flaky"`` keeps the drill's own
    plan (double crash + loss spike + slowdown), ``"slowburn"`` swaps
    in one long single-server slowdown (the reconstruction showcase),
    ``"none"`` clears it for the fault-free baseline.
    """
    import dataclasses

    from repro.config import StripeConfig
    from repro.core.campaign import named_campaign, run_campaign
    from repro.faults import FaultPlan, ServerSlowdown

    config = named_campaign("sc99-flaky")
    config = dataclasses.replace(config, n_timesteps=n_timesteps)
    if faults == "none":
        config = dataclasses.replace(config, faults=None, policy=None)
    elif faults == "slowburn":
        config = dataclasses.replace(
            config,
            faults=FaultPlan.of(
                [
                    ServerSlowdown(
                        at=0.2,
                        duration=30.0,
                        server="dpss1",
                        factor=0.02,
                    )
                ]
            ),
        )
    stripe: Optional[StripeConfig] = (
        StripeConfig.from_spec("4+1") if striped else None
    )
    config = dataclasses.replace(config, stripe=stripe)
    result = run_campaign(config)
    return {
        "p99_s": round(result.read_p99, 6),
        "retries": result.retries,
        "reconstructions": result.reconstructions,
        "degraded_frames": result.degraded_frames,
        "parity_mb": round(result.parity_bytes / 1e6, 3),
        "frames_complete": result.viewer_frames_complete,
    }


def _assert_tail(entry: Dict[str, Any]) -> None:
    """The suite's correctness gates, independent of the floor check."""
    clean = entry["clean_unstriped"]["p99_s"]
    flaky = entry["flaky_striped"]["p99_s"]
    if flaky > TAIL_BOUND * clean:
        raise AssertionError(
            f"flaky striped p99 {flaky:.3f}s exceeds {TAIL_BOUND}x the "
            f"fault-free unstriped baseline {clean:.3f}s"
        )
    if entry["flaky_striped"]["retries"] != 0:
        raise AssertionError(
            "striped reads must reconstruct, not retry: saw "
            f"{entry['flaky_striped']['retries']} retries"
        )
    slowburn = entry["slowburn_striped"]
    if slowburn["reconstructions"] == 0:
        raise AssertionError(
            "the slowburn drill must exercise XOR reconstruction"
        )
    if slowburn["degraded_frames"] != 0:
        raise AssertionError(
            "a single slow server must be fully masked by parity: "
            f"{slowburn['degraded_frames']} frame(s) degraded"
        )


def run_suite(*, quick: bool = False) -> Dict[str, Any]:
    """Run the stripe suite; returns the BENCH_stripe payload."""
    n_timesteps = 4 if quick else 8
    runs = {
        "clean_unstriped": bench_drill(
            striped=False, faults="none", n_timesteps=n_timesteps
        ),
        "clean_striped": bench_drill(
            striped=True, faults="none", n_timesteps=n_timesteps
        ),
        "flaky_unstriped": bench_drill(
            striped=False, faults="flaky", n_timesteps=n_timesteps
        ),
        "flaky_striped": bench_drill(
            striped=True, faults="flaky", n_timesteps=n_timesteps
        ),
        "slowburn_striped": bench_drill(
            striped=True, faults="slowburn", n_timesteps=n_timesteps
        ),
    }
    _assert_tail(runs)
    clean = runs["clean_unstriped"]["p99_s"]
    entry: Dict[str, Any] = dict(runs)
    entry["n_timesteps"] = n_timesteps
    entry["tail_containment"] = round(
        clean / runs["flaky_striped"]["p99_s"], 3
    )
    entry["tail_speedup"] = round(
        runs["flaky_unstriped"]["p99_s"] / runs["flaky_striped"]["p99_s"],
        3,
    )
    entry["clean_overhead"] = round(
        clean / runs["clean_striped"]["p99_s"], 3
    )
    return {
        "suite": "stripe-redundancy",
        "quick": quick,
        "benchmarks": {"sc99_flaky": entry},
    }


def _ratios(results: Dict[str, Any]) -> Dict[str, float]:
    ratios = {}
    for name, entry in results.get("benchmarks", {}).items():
        for metric in ("tail_containment", "tail_speedup",
                       "clean_overhead"):
            ratios[f"{name}.{metric}"] = entry[metric]
    return ratios


def check_regression(
    results: Dict[str, Any],
    baseline: Dict[str, float],
    *,
    tolerance: float = REGRESSION_TOLERANCE,
) -> List[str]:
    """Gate the measured ratios against the checked-in floors."""
    return check_floors(
        _ratios(results), baseline, tolerance=tolerance, what="ratio"
    )


def write_results(results: Dict[str, Any], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")


def summary(results: Dict[str, Any]) -> str:
    lines = ["stripe benchmarks (p99 DPSS read latency):"]
    for name, entry in results.get("benchmarks", {}).items():
        lines.append(
            f"  {name:12s} clean {entry['clean_unstriped']['p99_s']:.3f}s"
            f" | flaky unstriped {entry['flaky_unstriped']['p99_s']:.3f}s"
            f" ({entry['flaky_unstriped']['retries']} retries)"
            f" | flaky striped {entry['flaky_striped']['p99_s']:.3f}s"
            f" ({entry['flaky_striped']['reconstructions']} recon)"
        )
        lines.append(
            f"  {'':12s} containment {entry['tail_containment']:.2f}x,"
            f" tail speedup {entry['tail_speedup']:.2f}x,"
            f" clean overhead {entry['clean_overhead']:.2f}x,"
            f" slowburn recon "
            f"{entry['slowburn_striped']['reconstructions']}"
        )
    return "\n".join(lines)
