"""Campaign configurations and the end-to-end session runner.

A campaign is one of the paper's instrumented runs: a DPSS site, a WAN
path, a compute platform running the back end, and a viewer. The named
constructors below correspond to the experiments of sections 4.1-4.4;
:func:`run_campaign` wires everything onto a fresh simulator, runs the
frame loop, and returns a :class:`~repro.core.report.CampaignResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.backend.sim import SimBackEnd
from repro.config import (
    BackendConfig,
    NetworkConfig,
    StripeConfig,
    TileConfig,
)
from repro.core.platforms import (
    DPSS_DISK_RATE,
    DPSS_DISKS_PER_SERVER,
    DPSS_N_SERVERS,
    DPSS_SERVER_NIC,
    PlatformSpec,
    Platforms,
    WanSpec,
    Wans,
)
from repro.core.report import CampaignResult
from repro.datagen.timeseries import TimeSeriesMeta
from repro.dpss.blocks import DpssDataset
from repro.dpss.master import DpssMaster
from repro.dpss.server import DpssServer
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultPlan,
    LossSpike,
    MasterStall,
    ServerCrash,
    ServerSlowdown,
)
from repro.faults.policy import RequestPolicy
from repro.netlogger.daemon import NetLogDaemon
from repro.netsim.host import Host
from repro.netsim.link import Link
from repro.netsim.tcp import TcpParams
from repro.netsim.topology import Network
from repro.util.units import KIB, mbps
from repro.viewer.sim import SimViewer

#: the paper's combustion dataset: 640x256x256 floats, 265 steps
PAPER_SHAPE: Tuple[int, int, int] = (640, 256, 256)
PAPER_TIMESTEPS = 265


@dataclass(frozen=True)
class CampaignConfig:
    """Everything needed to reproduce one instrumented run."""

    name: str
    platform: PlatformSpec
    wan: WanSpec
    n_pes: int
    overlapped: bool = False
    #: slab-buffer depth of the overlapped pipeline; 2 is the paper's
    #: double buffer, larger values let the reader run further ahead
    overlap_depth: int = 2
    #: Appendix B's rejected MPI-only pipeline (half the ranks read)
    mpi_only_overlap: bool = False
    #: frames actually simulated (full 265 is cheap but unnecessary
    #: for the 10-timestep figures)
    n_timesteps: int = 10
    shape: Tuple[int, int, int] = PAPER_SHAPE
    dataset_timesteps: int = PAPER_TIMESTEPS
    #: viewer co-located with the back end (April campaign) or back
    #: across the WAN (section 4.4 runs)
    viewer_remote: bool = False
    #: WAN between back end and a remote viewer (defaults to ``wan``)
    viewer_wan: Optional[WanSpec] = None
    seed: int = 1
    #: fault schedule replayed against the session; a non-empty plan
    #: also enables dataset replication (replicas=2) and installs the
    #: default request policy unless ``policy`` overrides it
    faults: Optional[FaultPlan] = None
    #: client-side timeout/retry/hedging policy for DPSS reads
    policy: Optional[RequestPolicy] = None
    #: tile-based distributed framebuffer mode; ``None`` (and the
    #: default disabled config) keep the historical whole-slab path
    tiles: Optional[TileConfig] = None
    #: parity-striped DPSS with redundant k-of-n reads; ``None`` (and
    #: the default disabled config) keep the round-robin placement and
    #: the retry-based fault path
    stripe: Optional[StripeConfig] = None

    def __post_init__(self):
        if self.n_pes < 1:
            raise ValueError("n_pes must be >= 1")
        if self.n_timesteps < 1:
            raise ValueError("n_timesteps must be >= 1")
        if self.overlap_depth < 2:
            raise ValueError("overlap_depth must be >= 2")

    @property
    def meta(self) -> TimeSeriesMeta:
        """Dataset metadata for this campaign."""
        return TimeSeriesMeta(
            name=f"{self.name}-data",
            shape=self.shape,
            n_timesteps=self.dataset_timesteps,
        )

    # -- the paper's named runs ----------------------------------------
    @classmethod
    def lan_e4500(cls, *, overlapped: bool, n_timesteps: int = 10,
                  **kw) -> "CampaignConfig":
        """Figures 12-13: E4500 on the LBL gigabit LAN, 8 PEs,
        ten timesteps, serial vs overlapped."""
        return cls(
            name=f"lan-e4500-{'overlapped' if overlapped else 'serial'}",
            platform=Platforms.E4500,
            wan=Wans.LAN_GIGE,
            n_pes=8,
            overlapped=overlapped,
            n_timesteps=n_timesteps,
            **kw,
        )

    @classmethod
    def nton_cplant(cls, *, n_pes: int = 4, overlapped: bool = False,
                    viewer_remote: bool = False, n_timesteps: int = 10,
                    **kw) -> "CampaignConfig":
        """Figure 10 (4 PEs, serial, viewer local) and Figures 14-15
        (8 PEs, viewer back at LBL over ESnet)."""
        return cls(
            name=(
                f"nton-cplant{n_pes}-"
                f"{'overlapped' if overlapped else 'serial'}"
            ),
            platform=Platforms.CPLANT,
            wan=Wans.NTON_2000,
            n_pes=n_pes,
            overlapped=overlapped,
            n_timesteps=n_timesteps,
            viewer_remote=viewer_remote,
            viewer_wan=Wans.ESNET if viewer_remote else None,
            **kw,
        )

    @classmethod
    def esnet_anl_smp(cls, *, overlapped: bool, n_timesteps: int = 8,
                      **kw) -> "CampaignConfig":
        """Figures 16-17: back end on the ANL Onyx2 reading the LBL
        DPSS over ESnet, viewer back at LBL."""
        return cls(
            name=f"esnet-anl-{'overlapped' if overlapped else 'serial'}",
            platform=Platforms.ONYX2,
            wan=Wans.ESNET,
            n_pes=8,
            overlapped=overlapped,
            n_timesteps=n_timesteps,
            viewer_remote=True,
            viewer_wan=Wans.ESNET,
            **kw,
        )

    @classmethod
    def sc99_cosmology(cls, *, n_timesteps: int = 6, **kw) -> "CampaignConfig":
        """SC99: cosmology data, LBL DPSS -> CPlant over NTON (the
        250 Mbps configuration), viewer on the show floor."""
        return cls(
            name="sc99-cosmology",
            platform=Platforms.CPLANT,
            wan=Wans.NTON_1999,
            n_pes=8,
            n_timesteps=n_timesteps,
            shape=(512, 256, 256),
            dataset_timesteps=64,
            viewer_remote=True,
            viewer_wan=Wans.SCINET99,
            **kw,
        )

    @classmethod
    def sc99_showfloor(cls, *, n_timesteps: int = 6, **kw) -> "CampaignConfig":
        """SC99: LBL DPSS -> LBL-booth cluster over shared SciNet (the
        150 Mbps configuration)."""
        return cls(
            name="sc99-showfloor",
            platform=Platforms.BABEL,
            wan=Wans.SCINET99,
            n_pes=8,
            n_timesteps=n_timesteps,
            shape=(512, 256, 256),
            dataset_timesteps=64,
            **kw,
        )

    @classmethod
    def sc99_flaky(cls, *, n_timesteps: int = 6, **kw) -> "CampaignConfig":
        """The flaky-show-floor drill as a first-class campaign: the
        SC99 show-floor run at demo scale with the fault schedule of
        ``examples/plans/sc99_flaky.json`` baked in (two server
        crashes, a WAN loss spike, a master stall, a slowdown) and the
        aggressive request policy. The standard testbed for comparing
        retry-based recovery against parity-striped reads
        (``--stripe 4+1``)."""
        plan = FaultPlan.of([
            ServerCrash(at=0.6, duration=3.0, server="dpss0"),
            ServerCrash(at=0.6, duration=3.0, server="dpss1"),
            LossSpike(at=1.5, duration=1.0, link="wan", factor=0.4),
            MasterStall(at=2.0, duration=0.3),
            ServerSlowdown(
                at=3.8, duration=0.8, server="dpss2", factor=0.25
            ),
        ])
        return cls(
            name="sc99-flaky",
            platform=Platforms.BABEL,
            wan=Wans.SCINET99,
            n_pes=8,
            n_timesteps=n_timesteps,
            shape=(160, 64, 64),
            dataset_timesteps=8,
            seed=7,
            faults=plan,
            policy=RequestPolicy.aggressive(),
            **kw,
        )

    def with_changes(self, **kw) -> "CampaignConfig":
        """A modified copy (ablations, sweeps)."""
        return replace(self, **kw)


def _sc99_multiviewer_factory(overlapped: bool):
    # Lazy: repro.service imports this module for CampaignConfig.
    from repro.service.manager import ServiceCampaign

    return ServiceCampaign.sc99_multiviewer()


def _sc99_serve10k_factory(overlapped: bool):
    # Lazy for the same reason as the multiviewer entry.
    from repro.service.shard import ShardCampaign

    return ShardCampaign.sc99_serve10k()


#: The runnable campaign registry: name -> factory(overlapped). Most
#: entries yield a :class:`CampaignConfig`; service entries yield a
#: :class:`repro.service.ServiceCampaign` (run via
#: :func:`repro.service.run_service_campaign`, which
#: :func:`run_campaign` dispatches to automatically).
_NAMED_CAMPAIGNS: Dict[str, Callable[[bool], object]] = {
    "sc99-multiviewer": _sc99_multiviewer_factory,
    "sc99-serve10k": _sc99_serve10k_factory,
    "lan_e4500": lambda ov: CampaignConfig.lan_e4500(overlapped=ov),
    "nton_cplant4": lambda ov: CampaignConfig.nton_cplant(
        n_pes=4, overlapped=ov
    ),
    "nton_cplant8": lambda ov: CampaignConfig.nton_cplant(
        n_pes=8, overlapped=ov, viewer_remote=True
    ),
    "esnet_anl": lambda ov: CampaignConfig.esnet_anl_smp(overlapped=ov),
    "sc99_cosmology": lambda ov: CampaignConfig.sc99_cosmology(),
    "sc99_showfloor": lambda ov: CampaignConfig.sc99_showfloor(),
    "sc99-flaky": lambda ov: CampaignConfig.sc99_flaky(),
}


def campaign_names() -> List[str]:
    """Names accepted by :func:`named_campaign`, sorted."""
    return sorted(_NAMED_CAMPAIGNS)


def named_campaign(name: str, *, overlapped: bool = False):
    """Resolve a campaign by its registry name.

    Returns a :class:`CampaignConfig`, or a
    :class:`repro.service.ServiceCampaign` for the multi-viewer
    service entries. Raises :class:`KeyError` for unknown names;
    ``overlapped`` is ignored by campaigns that do not support the
    distinction (the SC99 demos and service campaigns).
    """
    try:
        factory = _NAMED_CAMPAIGNS[name]
    except KeyError:
        raise KeyError(
            f"unknown campaign {name!r}; known: {', '.join(campaign_names())}"
        ) from None
    return factory(overlapped)


def build_session(config: CampaignConfig):
    """Construct the simulated world for a campaign.

    Returns ``(network, backend, viewer, daemon)`` ready to run;
    :func:`run_campaign` is the one-call wrapper.
    """
    net = Network()
    daemon = NetLogDaemon()

    # Parity striping needs one server per stripe position; the
    # historical 4-server site grows to the stripe width when needed
    # (and only then -- the unstriped world stays byte-identical).
    stripe = (
        config.stripe
        if config.stripe is not None and config.stripe.enabled
        else None
    )
    n_servers = (
        max(DPSS_N_SERVERS, stripe.width)
        if stripe is not None
        else DPSS_N_SERVERS
    )

    # --- DPSS site -----------------------------------------------------
    dpss_lan = net.add_link(
        Link("dpss-lan", rate=mbps(2000.0), latency=0.0001)
    )
    master_host = net.add_host(Host("dpss-master", nic_rate=mbps(100.0)))
    master = DpssMaster(master_host)
    for i in range(n_servers):
        h = net.add_host(
            Host(f"dpss{i}", nic_rate=DPSS_SERVER_NIC)
        )
        server = DpssServer(
            h,
            n_disks=DPSS_DISKS_PER_SERVER,
            disk_rate=DPSS_DISK_RATE,
            cache_bytes=0.0,  # time-series sweeps never re-read blocks
        )
        server.attach(net)
        master.add_server(server)

    # --- WAN ----------------------------------------------------------
    wan = net.add_link(
        Link(
            config.wan.name,
            rate=config.wan.rate,
            latency=config.wan.latency,
            efficiency=config.wan.efficiency,
            background_rate=config.wan.background_rate,
            monitor=True,
        )
    )

    # --- compute platform ----------------------------------------------
    plat = config.platform
    if plat.cluster:
        pe_hosts = [
            net.add_host(
                Host(
                    f"pe{i}",
                    nic_rate=plat.nic_rate,
                    n_cpus=plat.n_cpus,
                    shared_cpu_io=plat.shared_cpu_io,
                )
            )
            for i in range(config.n_pes)
        ]
    else:
        smp = net.add_host(
            Host(
                plat.name,
                nic_rate=plat.nic_rate,
                n_cpus=plat.n_cpus,
                shared_cpu_io=plat.shared_cpu_io,
            )
        )
        pe_hosts = [smp] * config.n_pes

    # Routes: DPSS site <-> each compute host over the WAN.  Dedup
    # host names with dict keys (stable first-occurrence order), not a
    # set: str hashes are salted per process, so set order would vary
    # run to run (VIS201).
    for host in dict.fromkeys(h.name for h in pe_hosts):
        net.add_route("dpss-master", host, [dpss_lan, wan])
        for i in range(n_servers):
            net.add_route(f"dpss{i}", host, [dpss_lan, wan])

    # --- viewer ---------------------------------------------------------
    viewer_host = net.add_host(Host("viewer", nic_rate=mbps(100.0)))
    if config.viewer_remote:
        vwan_spec = config.viewer_wan or config.wan
        viewer_wan = net.add_link(
            Link(
                f"viewer-{vwan_spec.name}",
                rate=vwan_spec.rate,
                latency=vwan_spec.latency,
                efficiency=vwan_spec.efficiency,
                background_rate=vwan_spec.background_rate,
            )
        )
        viewer_links = [viewer_wan]
    else:
        viewer_lan = net.add_link(
            Link("viewer-lan", rate=mbps(1000.0), latency=0.0001)
        )
        viewer_links = [viewer_lan]
    for host in dict.fromkeys(h.name for h in pe_hosts):
        net.add_route(host, "viewer", viewer_links)
    net.add_route("dpss-master", "viewer", [dpss_lan, wan])

    # --- dataset ---------------------------------------------------------
    # A non-empty fault plan turns on dataset replication so failovers
    # and hedged reads have somewhere to go; an empty (or absent) plan
    # keeps the historical single-copy placement bit-for-bit.
    active_faults = config.faults if config.faults else None
    meta = config.meta
    # Parity replaces replication: a striped dataset stays single-copy
    # even under a fault plan (reconstruction is the failover).
    master.register_dataset(
        DpssDataset(name=meta.name, size=float(meta.total_bytes),
                    block_size=64 * KIB),
        replicas=(
            2 if active_faults is not None and stripe is None else 1
        ),
        stripe=stripe,
    )

    # --- endpoints ---------------------------------------------------------
    tcp = TcpParams(max_window=config.wan.tcp_window)
    policy = config.policy
    if policy is None and active_faults is not None:
        policy = RequestPolicy()
    health = None
    if stripe is not None:
        from repro.dpss.health import HealthTracker
        from repro.netlogger.logger import NetLogger

        health = HealthTracker(
            now=lambda: net.env.now,
            half_life=stripe.health_half_life,
            logger=NetLogger(
                "dpss-client", "health",
                clock=lambda: net.env.now, daemon=daemon,
            ),
        )
    viewer = SimViewer(
        net, "viewer", daemon=daemon,
        config=NetworkConfig(tcp=TcpParams(max_window=1024 * KIB)),
    )
    backend = SimBackEnd(
        net,
        pe_hosts,
        master,
        meta.name,
        viewer,
        meta,
        daemon=daemon,
        render_cost=plat.render_cost_model(),
        config=BackendConfig(
            n_timesteps=config.n_timesteps,
            overlapped=config.overlapped,
            overlap_depth=config.overlap_depth,
            mpi_only_overlap=config.mpi_only_overlap,
            overlap_render_share=(
                plat.overlap_render_share if config.overlapped else 1.0
            ),
            overlap_ingest_factor=(
                plat.overlap_ingest_factor if config.overlapped else 1.0
            ),
            load_jitter_cv=(
                plat.overlap_jitter_cv if config.overlapped else 0.0
            ),
            seed=config.seed,
            network=NetworkConfig(
                tcp=tcp, policy=policy,
                stripe=stripe if stripe is not None else StripeConfig(),
            ),
            tiles=config.tiles if config.tiles is not None else TileConfig(),
        ),
        health=health,
    )

    # --- faults ----------------------------------------------------------
    if active_faults is not None:
        aliases = {"wan": config.wan.name}
        if config.viewer_remote:
            vspec = config.viewer_wan or config.wan
            aliases["viewer-wan"] = f"viewer-{vspec.name}"
        injector = FaultInjector(
            net, master, active_faults, daemon=daemon, link_aliases=aliases
        )
        if health is not None:
            # Crash/flap observations bias which server the striped
            # reads leave out; attached only when striping is on, so
            # the unstriped event stream stays byte-identical.
            injector.observers.append(health.observe_fault)
        injector.start()
        net.fault_injector = injector
    return net, backend, viewer, daemon


def attach_alloc_logger(net, daemon, *, sample_every: int = 200):
    """Attach ``ALLOC_*`` NetLogger counters to a network's scheduler.

    Samples one :data:`~repro.netlogger.events.Tags.ALLOC_REALLOC`
    event per ``sample_every`` re-solve batches (the raw stream is one
    per scheduler event -- far too hot to log). Returns a finalizer
    that emits the end-of-run ``ALLOC_SUMMARY``; call it after the run,
    before writing ULM.
    """
    from repro.netlogger.events import Tags
    from repro.netlogger.logger import NetLogger

    logger = NetLogger(
        "scheduler", "alloc", clock=lambda: net.env.now, daemon=daemon
    )
    seen = {"batches": 0}

    def observe(tag: str, data) -> None:
        seen["batches"] += 1
        if seen["batches"] % sample_every == 1:
            logger.log(tag, **data)

    net.sched.alloc_observer = observe

    def finalize() -> None:
        stats = net.sched.stats.to_dict()
        logger.log(
            Tags.ALLOC_SUMMARY,
            **{key: float(value) for key, value in stats.items()},
        )

    return finalize


def run_campaign(
    config: Any, *, sanitize: bool = False,
    ulm_path: Optional[str] = None, alloc_stats: bool = False,
) -> Any:
    """Build and run a campaign to completion; reduce the results.

    With ``sanitize=True`` the concurrency sanitizer observes the run
    (identical sim timings -- it only watches) and its findings land
    in ``result.sanitizer_findings`` plus ``SAN_*`` daemon events.
    ``ulm_path`` writes the daemon's time-sorted ULM event stream to a
    file after the run (before any ``SAN_*`` events are reduced in).
    ``alloc_stats=True`` adds sampled ``ALLOC_*`` allocator counters
    and an end-of-run ``ALLOC_SUMMARY`` to the event stream (also a
    pure observer: sim timings are unchanged).

    A :class:`repro.service.ServiceCampaign` (as returned by
    :func:`named_campaign` for the multi-viewer entries) dispatches to
    :func:`repro.service.run_service_campaign` and returns its
    :class:`repro.service.ServiceResult` (a :class:`CampaignResult`
    subclass). A :class:`repro.service.shard.ShardCampaign` dispatches
    to :func:`repro.service.shard.run_shard_campaign` and returns its
    :class:`~repro.service.shard.ShardResult` (which is *not* a
    :class:`CampaignResult` -- the shard layer models flows, not
    pipelines; ``sanitize``/``alloc_stats`` do not apply).
    """
    from repro.service.manager import ServiceCampaign, run_service_campaign
    from repro.service.shard import ShardCampaign, run_shard_campaign

    if isinstance(config, ShardCampaign):
        return run_shard_campaign(config, ulm_path=ulm_path)
    if isinstance(config, ServiceCampaign):
        return run_service_campaign(
            config, sanitize=sanitize, ulm_path=ulm_path,
            alloc_stats=alloc_stats,
        )
    net, backend, viewer, daemon = build_session(config)
    sanitizer = None
    if sanitize:
        from repro.analysis import attach_sanitizer
        from repro.netlogger.logger import NetLogger

        sanitizer = attach_sanitizer(
            net.env,
            logger=NetLogger(
                "sanitizer",
                "sanitizer",
                clock=lambda: net.env.now,
                daemon=daemon,
            ),
        )
    finish_alloc = (
        attach_alloc_logger(net, daemon) if alloc_stats else None
    )
    done = backend.run()
    net.run(until=done)
    if finish_alloc is not None:
        finish_alloc()
    if ulm_path is not None:
        daemon.write_ulm(ulm_path)
    result = CampaignResult.from_run(config, net, backend, viewer, daemon)
    if sanitizer is not None:
        # Reduce results first so event_log matches the unsanitized
        # run exactly; the SAN_* events land in the daemon afterwards.
        result.sanitizer_findings = list(sanitizer.report().findings)
    return result
