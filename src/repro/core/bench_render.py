"""Render-path benchmarks (the ``visapult bench --suite render`` suite).

Three benchmarks measure what the tile-based distributed framebuffer
buys over whole-slab shipping:

- ``wire``: the tiny lan_e4500 campaign run twice, whole-slab versus
  tile mode with delta transmission; the gated ``wire_reduction``
  metric is slab bytes-on-wire over tile bytes-on-wire;
- ``composite``: per-tile depth compositing
  (:class:`~repro.ibravr.compositor.TiledCompositor`) against the
  whole-image reference on the same synthetic slab stack --
  informational (the tile path pays crop + hash overhead in exchange
  for delta tracking), plus a bitwise-equality sanity check;
- ``orbit_cache``: two viewers orbiting overlapping frusta against a
  tile-keyed :class:`~repro.service.cache.RenderCache`; the gated
  ``orbit_warm_hit_ratio`` is the hit ratio of a replayed orbit over a
  warm cache, and the cold ratio shows cross-viewer tile sharing.

Results land in ``BENCH_render.json``;
``benchmarks/perf/baseline_render.json`` pins the gated-metric floors
CI guards against (a byte ratio and a hit ratio, not wall seconds, so
the gate is hardware-robust).
"""

from __future__ import annotations

import math
import time
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.core.bench import REGRESSION_TOLERANCE, check_floors, write_results

__all__ = [
    "bench_wire",
    "bench_composite",
    "bench_orbit_cache",
    "run_suite",
    "check_regression",
    "summary",
    "write_results",
]


def bench_wire(*, quick: bool = False) -> Dict[str, float]:
    """Bytes-on-wire, whole-slab versus tile mode, same tiny campaign."""
    from repro.config import TileConfig
    from repro.core import run_campaign
    from repro.core.campaign import CampaignConfig

    base = CampaignConfig.lan_e4500(overlapped=True).with_changes(
        shape=(64, 32, 32),
        dataset_timesteps=8,
        n_timesteps=3 if quick else 6,
    )
    start = time.perf_counter()
    slab = run_campaign(base)
    slab_s = time.perf_counter() - start
    tiled_config = base.with_changes(
        tiles=TileConfig(enabled=True, tile_size=8)
    )
    start = time.perf_counter()
    tiled = run_campaign(tiled_config)
    tiled_s = time.perf_counter() - start
    slab_bytes = slab.backend_to_viewer_bytes
    tile_bytes = tiled.backend_to_viewer_bytes
    return {
        "n_timesteps": float(base.n_timesteps),
        "slab_bytes": round(slab_bytes, 1),
        "tile_bytes": round(tile_bytes, 1),
        "tiles_full": float(tiled.tiles_full),
        "tiles_ref": float(tiled.tiles_ref),
        "bytes_saved": round(tiled.tile_bytes_saved, 1),
        "slab_s": round(slab_s, 4),
        "tiled_s": round(tiled_s, 4),
        "reduction": round(slab_bytes / tile_bytes, 3)
        if tile_bytes > 0
        else 0.0,
    }


def _synthetic_stack(
    *, n_slabs: int, height: int, width: int
) -> List[Any]:
    """Deterministic premultiplied-RGBA slab layers for compositing."""
    from repro.volren.renderer import SlabRendering

    rng = np.random.default_rng(1999)
    renderings = []
    for rank in range(n_slabs):
        rgba = rng.random((height, width, 4), dtype=np.float32)
        rgba[..., :3] *= rgba[..., 3:]  # premultiply
        lo = rank / n_slabs
        hi = (rank + 1) / n_slabs
        renderings.append(
            SlabRendering(
                rank=rank,
                image=rgba,
                depth=None,
                axis=0,
                flip=False,
                slab_center=((lo + hi) / 2, 0.5, 0.5),
                slab_lo=(lo, 0.0, 0.0),
                slab_hi=(hi, 1.0, 1.0),
            )
        )
    return renderings


def bench_composite(*, quick: bool = False) -> Dict[str, float]:
    """Whole-image versus per-tile compositing of one slab stack."""
    from repro.ibravr.compositor import TiledCompositor
    from repro.volren.tiles import TileGrid

    size = 128 if quick else 256
    n_slabs = 8
    reps = 3 if quick else 10
    renderings = _synthetic_stack(n_slabs=n_slabs, height=size, width=size)
    compositor = TiledCompositor(TileGrid(width=size, height=size))
    start = time.perf_counter()
    for _ in range(reps):
        whole = compositor.composite_whole(renderings)
    whole_s = (time.perf_counter() - start) / reps
    start = time.perf_counter()
    for _ in range(reps):
        tiled = compositor.composite(renderings)
    tiled_s = (time.perf_counter() - start) / reps
    if not np.array_equal(whole, tiled):
        raise AssertionError(
            "per-tile compositing diverged from the whole-image reference"
        )
    return {
        "image_size": float(size),
        "n_slabs": float(n_slabs),
        "n_tiles": float(compositor.grid.n_tiles),
        "whole_s": round(whole_s, 5),
        "tiled_s": round(tiled_s, 5),
        "overhead": round(tiled_s / whole_s, 3) if whole_s > 0 else 0.0,
    }


def _orbit_window(step: int, steps: int, phase: float) -> Tuple[float, float]:
    """The x-window a camera sees at one orbit step, in [0, 1]."""
    span = 0.6
    lo = (1.0 - span) * 0.5 * (
        1.0 + math.cos(2.0 * math.pi * step / steps + phase)
    )
    return lo, lo + span


def bench_orbit_cache(*, quick: bool = False) -> Dict[str, float]:
    """Tile-keyed cache reuse under two orbiting, overlapping frusta.

    Two viewers orbit the same timestep sequence a quarter-turn apart;
    their frusta overlap, so the trailing viewer hits tiles the leading
    viewer already rendered (the cold ratio). Replaying the whole orbit
    against the warm cache measures steady-state reuse (the gated warm
    ratio).
    """
    from repro.service.cache import CacheConfig, RenderCache
    from repro.simcore.env import Environment
    from repro.volren.tiles import TileGrid

    grid = TileGrid(width=128, height=128, tile_size=16)
    steps = 8 if quick else 24
    cache = RenderCache(Environment(), CacheConfig())

    def one_pass() -> None:
        for step in range(steps):
            for viewer in range(2):
                phase = viewer * math.pi / 2.0
                lo, hi = _orbit_window(step, steps, phase)
                for tid in grid.tiles_in_rect(lo, 0.0, hi, 1.0):
                    key = ("tile", "orbit-bench", step, 0, grid.width,
                           grid.height, grid.tile_size, tid)
                    # vis: allow[VIS211] benchmark loop renders no
                    # degraded slabs, so the abandon leg is unreachable
                    claim = cache.begin(key, tile=tid, frame=step)
                    if claim.status == "lead":
                        cache.publish(
                            key, float(grid.tile_pixels(tid) * 4),
                            tile=tid, frame=step,
                        )

    start = time.perf_counter()
    one_pass()
    cold_hits, cold_lookups = cache.stats.hits, cache.stats.lookups
    one_pass()
    wall = time.perf_counter() - start
    warm_hits = cache.stats.hits - cold_hits
    warm_lookups = cache.stats.lookups - cold_lookups
    return {
        "orbit_steps": float(steps),
        "lookups": float(cache.stats.lookups),
        "cold_hit_ratio": round(cold_hits / cold_lookups, 3)
        if cold_lookups
        else 0.0,
        "warm_hit_ratio": round(warm_hits / warm_lookups, 3)
        if warm_lookups
        else 0.0,
        "wall_s": round(wall, 4),
    }


def run_suite(*, quick: bool = False) -> Dict[str, Any]:
    """Run the render benchmarks; returns the BENCH_render payload."""
    wire = bench_wire(quick=quick)
    composite = bench_composite(quick=quick)
    orbit = bench_orbit_cache(quick=quick)
    return {
        "suite": "render",
        "quick": quick,
        "benchmarks": {
            "wire": wire,
            "composite": composite,
            "orbit_cache": orbit,
        },
        # the floors baseline_render.json pins; higher is better
        "gates": {
            "wire_reduction": wire["reduction"],
            "orbit_warm_hit_ratio": orbit["warm_hit_ratio"],
        },
    }


def check_regression(
    results: Dict[str, Any],
    baseline: Dict[str, float],
    *,
    tolerance: float = REGRESSION_TOLERANCE,
) -> List[str]:
    """Compare the gated metrics against the checked-in floors."""
    gates = results.get("gates", {})
    return check_floors(gates, baseline, tolerance=tolerance,
                        what="metric", unit="")


def summary(results: Dict[str, Any]) -> str:
    bench = results.get("benchmarks", {})
    lines = ["render benchmarks (tile mode vs whole-slab):"]
    if "wire" in bench:
        w = bench["wire"]
        lines.append(
            f"  wire                 {w['slab_bytes'] / 1e3:8.1f} kB -> "
            f"{w['tile_bytes'] / 1e3:8.1f} kB  ({w['reduction']:.2f}x "
            f"reduction, {w['tiles_ref']:.0f} ref tiles)"
        )
    if "composite" in bench:
        c = bench["composite"]
        lines.append(
            f"  composite            {c['whole_s'] * 1e3:8.2f} ms -> "
            f"{c['tiled_s'] * 1e3:8.2f} ms  ({c['overhead']:.2f}x "
            f"per-tile overhead, {c['n_tiles']:.0f} tiles)"
        )
    if "orbit_cache" in bench:
        o = bench["orbit_cache"]
        lines.append(
            f"  orbit cache          cold {o['cold_hit_ratio']:.0%} -> "
            f"warm {o['warm_hit_ratio']:.0%} hit ratio "
            f"({o['lookups']:.0f} lookups)"
        )
    return "\n".join(lines)
