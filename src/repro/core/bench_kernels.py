"""Compute-kernel benchmarks (``visapult bench --suite kernels``).

Four microbenchmarks pin the hot kernels this codebase leans on, each
against its bitwise-identical scalar oracle (the PR 5 pattern: the
``vectorized=False`` / ``scheduler="heap"`` paths *are* the reference
implementations, so the wall-clock ratio is a pure measure of the
vectorized engines):

- ``raycast``: :func:`repro.volren.raycast.render_slab` over a random
  volume -- batched transfer function + cumprod composite vs the
  per-pixel reference walk;
- ``raster``: :func:`repro.scenegraph.raster.render` of a textured
  quad-mesh scene -- grid edge functions vs the per-pixel reference;
- ``fairshare``: :func:`repro.simcore.fairshare.fill_rates` on one big
  component -- coefficient-matrix rounds vs the dict-walking oracle;
- ``events``: a hold-model churn on the raw event engines (pop one,
  push one at ``t + delay``) with a large resident set, calendar queue
  vs heapq, plus an end-to-end timeout storm through
  :class:`~repro.simcore.env.Environment` under both schedulers.

Results land in ``BENCH_kernels.json``;
``benchmarks/perf/baseline_kernels.json`` pins the speedup floors CI
guards against (ratios, not absolute seconds, so they are
hardware-robust).
"""

from __future__ import annotations

import heapq
import random
import time
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.core.bench import (
    REGRESSION_TOLERANCE,
    check_floors,
    write_results as _write_results,
)
from repro.simcore.calendar import CalendarQueue
from repro.simcore.env import Environment
from repro.simcore.fairshare import FlowSpec, ResourceSpec, fill_rates

write_results = _write_results


def _ratio(oracle_s: float, vectorized_s: float) -> float:
    return round(oracle_s / vectorized_s, 3) if vectorized_s > 0 else 0.0


# -- raycast -------------------------------------------------------------
def bench_raycast(*, quick: bool = False) -> Dict[str, float]:
    """render_slab on a random volume, vectorized vs per-pixel oracle."""
    from repro.volren.raycast import render_slab
    from repro.volren.transfer import TransferFunction

    dim = 48 if quick else 128
    volume = np.random.default_rng(11).random((dim, dim, dim))
    tf = TransferFunction.fire()

    render_slab(volume, tf)  # warm numpy/scipy caches
    start = time.perf_counter()
    image, _ = render_slab(volume, tf, return_depth=True)
    vec_s = time.perf_counter() - start
    start = time.perf_counter()
    oracle, _ = render_slab(volume, tf, return_depth=True, vectorized=False)
    scalar_s = time.perf_counter() - start
    if not np.array_equal(image, oracle):  # pragma: no cover - parity guard
        raise AssertionError("render_slab engines diverged")
    voxels = float(dim**3)
    return {
        "volume_dim": float(dim),
        "oracle_s": round(scalar_s, 4),
        "vectorized_s": round(vec_s, 4),
        "speedup": _ratio(scalar_s, vec_s),
        "mvoxels_per_s": round(voxels / vec_s / 1e6, 2) if vec_s > 0 else 0.0,
    }


# -- raster --------------------------------------------------------------
def _mesh_scene(n_quads: int, tex_dim: int, seed: int):
    from repro.scenegraph import Group, LineSet, QuadMesh, Texture2D

    rng = np.random.default_rng(seed)
    root = Group()
    grid = np.zeros((n_quads + 1, n_quads + 1, 3))
    xs = np.linspace(-1.0, 1.0, n_quads + 1)
    grid[..., 0] = xs[None, :]
    grid[..., 1] = xs[:, None]
    grid[..., 2] = 0.25 * rng.random((n_quads + 1, n_quads + 1))
    root.add(QuadMesh(grid, Texture2D(rng.random((tex_dim, tex_dim, 4)).astype(np.float32))))
    root.add(LineSet(rng.uniform(-1, 1, (8, 2, 3)), color=(1.0, 0.3, 0.1, 0.9)))
    return root


def bench_raster(*, quick: bool = False) -> Dict[str, float]:
    """Quad-mesh scene render, grid engine vs per-pixel oracle."""
    from repro.scenegraph import Camera
    from repro.scenegraph.raster import render

    n_quads, size = (6, 96) if quick else (16, 256)
    scene = _mesh_scene(n_quads, 32, seed=5)
    camera = Camera(
        position=(1.8, 1.4, 2.4), target=(0.0, 0.0, 0.0),
        up=(0.0, 1.0, 0.0), extent=3.2,
    )

    render(scene, camera, size, size)  # warm
    start = time.perf_counter()
    image = render(scene, camera, size, size)
    vec_s = time.perf_counter() - start
    start = time.perf_counter()
    oracle = render(scene, camera, size, size, vectorized=False)
    scalar_s = time.perf_counter() - start
    if not np.array_equal(image, oracle):  # pragma: no cover - parity guard
        raise AssertionError("raster engines diverged")
    return {
        "triangles": float(2 * n_quads * n_quads),
        "viewport": float(size),
        "oracle_s": round(scalar_s, 4),
        "vectorized_s": round(vec_s, 4),
        "speedup": _ratio(scalar_s, vec_s),
    }


# -- fairshare -----------------------------------------------------------
def _component(n_flows: int, n_resources: int, degree: int, seed: int):
    rng = random.Random(seed)
    resources = {
        f"r{j}": ResourceSpec(f"r{j}", rng.uniform(5.0, 50.0))
        for j in range(n_resources)
    }
    flows = []
    for i in range(n_flows):
        usage = {
            f"r{j}": rng.uniform(0.2, 2.0)
            for j in rng.sample(range(n_resources), degree)
        }
        floor = 0.0 if i % 3 else rng.uniform(0.0, 0.5)
        flows.append(FlowSpec(f"f{i}", rng.uniform(0.5, 20.0), usage, floor))
    return flows, resources


def bench_fairshare(*, quick: bool = False) -> Dict[str, float]:
    """fill_rates on one big component, matrix engine vs dict oracle."""
    n_flows, n_resources, solves = (64, 32, 8) if quick else (400, 150, 10)
    flows, resources = _component(n_flows, n_resources, 4, seed=9)

    fill_rates(flows, resources, vectorized=True)  # warm
    start = time.perf_counter()
    for _ in range(solves):
        vec = fill_rates(flows, resources, vectorized=True)
    vec_s = (time.perf_counter() - start) / solves
    start = time.perf_counter()
    for _ in range(solves):
        oracle = fill_rates(flows, resources, vectorized=False)
    scalar_s = (time.perf_counter() - start) / solves
    if vec != oracle:  # pragma: no cover - parity guard
        raise AssertionError("fill_rates engines diverged")
    return {
        "flows": float(n_flows),
        "resources": float(n_resources),
        "oracle_s": round(scalar_s, 5),
        "vectorized_s": round(vec_s, 5),
        "speedup": _ratio(scalar_s, vec_s),
    }


# -- event engine --------------------------------------------------------
def _churn_workload(
    resident: int, ops: int, seed: int
) -> Tuple[List[Tuple[float, int, int, None]], List[float]]:
    rng = random.Random(seed)
    entries = [
        (rng.random() * 100.0, rng.randint(0, 2), i, None)
        for i in range(resident)
    ]
    delays = [rng.expovariate(1.0) * 0.1 for _ in range(ops)]
    return entries, delays


def _churn_heap(
    entries: List[Tuple[float, int, int, None]],
    delays: List[float],
    warm: int,
) -> float:
    queue: List[Tuple[float, int, int, None]] = []
    counter = len(entries)
    for entry in entries:
        heapq.heappush(queue, entry)
    # Steady-state hold churn only: load and the first `warm` ops (where
    # the calendar's width adaptation settles) are untimed for both
    # engines; churn is what a long campaign spends its wall-clock on.
    for delay in delays[:warm]:
        t, prio, _cnt, _ = heapq.heappop(queue)
        counter += 1
        heapq.heappush(queue, (t + delay, prio, counter, None))
    start = time.perf_counter()
    for delay in delays[warm:]:
        t, prio, _cnt, _ = heapq.heappop(queue)
        counter += 1
        heapq.heappush(queue, (t + delay, prio, counter, None))
    return time.perf_counter() - start


def _churn_calendar(
    entries: List[Tuple[float, int, int, None]],
    delays: List[float],
    warm: int,
) -> float:
    queue = CalendarQueue()
    counter = len(entries)
    for entry in entries:
        queue.push(entry)
    for delay in delays[:warm]:
        t, prio, _cnt, _ = queue.pop()
        counter += 1
        queue.push((t + delay, prio, counter, None))
    start = time.perf_counter()
    for delay in delays[warm:]:
        t, prio, _cnt, _ = queue.pop()
        counter += 1
        queue.push((t + delay, prio, counter, None))
    return time.perf_counter() - start


def _timeout_storm(scheduler: str, n_procs: int, hops: int) -> float:
    env = Environment(scheduler=scheduler)

    def proc(env: Environment, delay: float):
        for _ in range(hops):
            yield env.timeout(delay)

    for k in range(n_procs):
        env.process(proc(env, 0.01 + (k % 97) * 1e-4))
    start = time.perf_counter()
    env.run()
    return time.perf_counter() - start


def bench_events(*, quick: bool = False) -> Dict[str, float]:
    """Hold-model churn on the raw engines + an Environment timeout storm.

    The churn preloads a large resident set, then repeatedly pops the
    minimum and pushes a successor at ``t + delay``: the monotone
    access pattern every simulation run exhibits, at the 1M-event scale
    the heapq engine's O(log n) tuple comparisons hurt most.
    """
    # The 1M resident set is the benchmark (the calendar's O(1) hold
    # beats heapq's O(log n) only at depth); quick mode trims churn ops,
    # not residency, so the CI gate measures the same regime.
    resident, ops = (1_000_000, 300_000) if quick else (1_000_000, 1_000_000)
    warm = 200_000
    entries, delays = _churn_workload(resident, warm + ops, seed=4)
    heap_s = _churn_heap(entries, delays, warm)
    calendar_s = _churn_calendar(entries, delays, warm)

    storm_procs, storm_hops = (2_000, 25) if quick else (10_000, 40)
    env_heap_s = _timeout_storm("heap", storm_procs, storm_hops)
    env_calendar_s = _timeout_storm("calendar", storm_procs, storm_hops)
    return {
        "resident_events": float(resident),
        "churn_ops": float(ops),
        "heap_s": round(heap_s, 4),
        "calendar_s": round(calendar_s, 4),
        "churn_speedup": _ratio(heap_s, calendar_s),
        "storm_events": float(storm_procs * storm_hops),
        "env_heap_s": round(env_heap_s, 4),
        "env_calendar_s": round(env_calendar_s, 4),
        "env_speedup": _ratio(env_heap_s, env_calendar_s),
    }


# -- suite ---------------------------------------------------------------
def run_suite(*, quick: bool = False) -> Dict[str, Any]:
    """Run the kernel benchmarks; returns the BENCH_kernels payload."""
    raycast = bench_raycast(quick=quick)
    raster = bench_raster(quick=quick)
    fairshare = bench_fairshare(quick=quick)
    events = bench_events(quick=quick)
    return {
        "suite": "kernels",
        "quick": quick,
        "benchmarks": {
            "raycast": raycast,
            "raster": raster,
            "fairshare": fairshare,
            "events": events,
        },
        # the floors baseline_kernels.json pins; higher is better
        "gates": {
            "raycast_speedup": raycast["speedup"],
            "raster_speedup": raster["speedup"],
            "fairshare_speedup": fairshare["speedup"],
            "events_churn_speedup": events["churn_speedup"],
            "events_env_speedup": events["env_speedup"],
        },
    }


def check_regression(
    results: Dict[str, Any],
    baseline: Dict[str, float],
    *,
    tolerance: float = REGRESSION_TOLERANCE,
) -> List[str]:
    """Compare the gated speedups against the checked-in floors."""
    gates = results.get("gates", {})
    return check_floors(gates, baseline, tolerance=tolerance)


def summary(results: Dict[str, Any]) -> str:
    bench = results.get("benchmarks", {})
    lines = ["kernel benchmarks (scalar oracle -> vectorized):"]
    if "raycast" in bench:
        r = bench["raycast"]
        lines.append(
            f"  raycast {r['volume_dim']:.0f}^3       "
            f"{r['oracle_s']:8.3f}s -> {r['vectorized_s']:8.3f}s  "
            f"({r['speedup']:.1f}x, {r['mvoxels_per_s']:.1f} Mvox/s)"
        )
    if "raster" in bench:
        r = bench["raster"]
        lines.append(
            f"  raster {r['triangles']:.0f} tris    "
            f"{r['oracle_s']:8.3f}s -> {r['vectorized_s']:8.3f}s  "
            f"({r['speedup']:.1f}x at {r['viewport']:.0f}^2)"
        )
    if "fairshare" in bench:
        f = bench["fairshare"]
        lines.append(
            f"  fairshare {f['flows']:.0f}x{f['resources']:.0f}  "
            f"{f['oracle_s'] * 1e3:8.2f}ms -> {f['vectorized_s'] * 1e3:8.2f}ms "
            f" ({f['speedup']:.2f}x per solve)"
        )
    if "events" in bench:
        e = bench["events"]
        lines.append(
            f"  events churn {e['resident_events'] / 1e6:.1f}M   "
            f"{e['heap_s']:8.3f}s -> {e['calendar_s']:8.3f}s  "
            f"({e['churn_speedup']:.2f}x; env storm {e['env_speedup']:.2f}x)"
        )
    return "\n".join(lines)
