"""Scene-graph access control for the multi-threaded live viewer.

"Except for a small amount of scene graph access control with
semaphores, I/O and rendering occur in an asynchronous fashion"
(section 3.4). :class:`SceneLock` is that small amount: I/O service
threads take the lock to swap a texture into the graph; the render
thread takes it to snapshot the graph for a frame. An update counter
lets the render thread skip redraws when nothing changed.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Optional

from repro.analysis.threadsan import thread_sanitizer


class SceneLock:
    """A mutex plus a monotonically increasing update counter."""

    def __init__(self, name: str = "scenegraph.scene"):
        self._lock = threading.RLock()
        self._version = 0
        self._changed = threading.Condition(self._lock)
        self.name = name
        # The condition variable needs the raw RLock, so order checking
        # is layered on via explicit hook calls rather than named_lock.
        self._sanitizer = thread_sanitizer()

    def _note_acquire(self) -> None:
        if self._sanitizer is not None:
            self._sanitizer.on_acquire(self.name)

    def _note_release(self) -> None:
        if self._sanitizer is not None:
            self._sanitizer.on_release(self.name)

    @property
    def version(self) -> int:
        """Number of updates committed so far."""
        with self._lock:
            return self._version

    @contextmanager
    def update(self):
        """Context for mutating the scene; bumps the version on exit."""
        self._note_acquire()
        try:
            with self._lock:
                yield
                self._version += 1
                self._changed.notify_all()
        finally:
            self._note_release()

    @contextmanager
    def read(self):
        """Context for reading the scene consistently."""
        self._note_acquire()
        try:
            with self._lock:
                yield self._version
        finally:
            self._note_release()

    def wait_for_change(
        self, last_seen: int, timeout: Optional[float] = None
    ) -> int:
        """Block until the version exceeds ``last_seen``; returns it.

        The live render thread uses this to sleep between scene graph
        updates instead of spinning.
        """
        with self._lock:
            if self._version > last_seen:
                return self._version
            self._changed.wait_for(
                lambda: self._version > last_seen, timeout=timeout
            )
            return self._version
