"""2-D textures with bilinear sampling."""

from __future__ import annotations

import numpy as np


class Texture2D:
    """A premultiplied RGBA float texture with bilinear sampling.

    ``data`` is (H, W, 4) float32 in [0, 1]. Sampling coordinates are
    (u, v) in [0, 1]^2 with u across columns, v across rows; values
    clamp at the edges (GL_CLAMP_TO_EDGE semantics).
    """

    def __init__(self, data: np.ndarray):
        data = np.asarray(data, dtype=np.float32)
        if data.ndim != 3 or data.shape[2] != 4:
            raise ValueError(f"texture must be (H, W, 4), got {data.shape}")
        if data.shape[0] < 1 or data.shape[1] < 1:
            raise ValueError("texture must be at least 1x1")
        self.data = data

    @property
    def shape(self):
        """(H, W) pixel dimensions."""
        return self.data.shape[:2]

    @property
    def nbytes_rgba8(self) -> int:
        """Wire size when shipped as 8-bit RGBA."""
        return self.data.shape[0] * self.data.shape[1] * 4

    def sample(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Bilinear sample at arrays of (u, v); returns (..., 4)."""
        h, w = self.data.shape[:2]
        u = np.clip(np.asarray(u, dtype=np.float64), 0.0, 1.0)
        v = np.clip(np.asarray(v, dtype=np.float64), 0.0, 1.0)
        # Map to continuous pixel coordinates, texel centers at +0.5.
        x = u * (w - 1)
        y = v * (h - 1)
        x0 = np.floor(x).astype(int)
        y0 = np.floor(y).astype(int)
        x1 = np.minimum(x0 + 1, w - 1)
        y1 = np.minimum(y0 + 1, h - 1)
        fx = (x - x0)[..., None]
        fy = (y - y0)[..., None]
        c00 = self.data[y0, x0]
        c01 = self.data[y0, x1]
        c10 = self.data[y1, x0]
        c11 = self.data[y1, x1]
        top = c00 * (1 - fx) + c01 * fx
        bot = c10 * (1 - fx) + c11 * fx
        return (top * (1 - fy) + bot * fy).astype(np.float32)

    @classmethod
    def solid(cls, rgba, shape=(2, 2)) -> "Texture2D":
        """Uniform single-color texture."""
        data = np.empty(shape + (4,), dtype=np.float32)
        data[...] = np.asarray(rgba, dtype=np.float32)
        return cls(data)
