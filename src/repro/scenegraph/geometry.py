"""Drawable leaf nodes: textured quads, quad meshes, line sets."""

from __future__ import annotations

import numpy as np

from repro.scenegraph.node import Node
from repro.scenegraph.texture import Texture2D

#: texture coordinates of a quad's four corners, in corner order
_QUAD_UV = np.array(
    [[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]], dtype=np.float64
)


class TexturedQuad(Node):
    """A planar quadrilateral carrying a 2-D texture.

    ``corners`` is (4, 3): the quad's vertices in CCW order; texture
    coordinates map corner i to ``[(0,0), (1,0), (1,1), (0,1)][i]``.
    This is the base IBRAVR primitive: "a single quadrilateral
    representing the center of the slab is used as the base geometry"
    (section 3.3).
    """

    def __init__(
        self, corners: np.ndarray, texture: Texture2D, name: str = ""
    ):
        super().__init__(name)
        corners = np.asarray(corners, dtype=np.float64)
        if corners.shape != (4, 3):
            raise ValueError(f"corners must be (4, 3), got {corners.shape}")
        self.corners = corners
        self.texture = texture

    def triangles(self):
        """The quad as two (vertex, uv) triangles for rasterisation."""
        c, uv = self.corners, _QUAD_UV
        return [
            (c[[0, 1, 2]], uv[[0, 1, 2]]),
            (c[[0, 2, 3]], uv[[0, 2, 3]]),
        ]


class QuadMesh(Node):
    """A regular grid of vertices with one texture: the IBRAVR
    quad-mesh depth extension ("replace the single quadrilateral with a
    quadrilateral mesh using offsets from the base plane for each point
    in the quad mesh", section 3.3).

    ``vertices`` is (R, C, 3); texture coordinates are uniform over
    the grid.
    """

    def __init__(self, vertices: np.ndarray, texture: Texture2D, name: str = ""):
        super().__init__(name)
        vertices = np.asarray(vertices, dtype=np.float64)
        if vertices.ndim != 3 or vertices.shape[2] != 3:
            raise ValueError(f"vertices must be (R, C, 3), got {vertices.shape}")
        if vertices.shape[0] < 2 or vertices.shape[1] < 2:
            raise ValueError("quad mesh needs at least 2x2 vertices")
        self.vertices = vertices
        self.texture = texture

    def triangles(self):
        """Yield (vertex, uv) triangles covering the mesh."""
        rows, cols = self.vertices.shape[:2]
        us = np.linspace(0.0, 1.0, cols)
        vs = np.linspace(0.0, 1.0, rows)
        out = []
        for r in range(rows - 1):
            for c in range(cols - 1):
                p00 = self.vertices[r, c]
                p01 = self.vertices[r, c + 1]
                p10 = self.vertices[r + 1, c]
                p11 = self.vertices[r + 1, c + 1]
                uv00 = (us[c], vs[r])
                uv01 = (us[c + 1], vs[r])
                uv10 = (us[c], vs[r + 1])
                uv11 = (us[c + 1], vs[r + 1])
                out.append(
                    (np.array([p00, p01, p11]), np.array([uv00, uv01, uv11]))
                )
                out.append(
                    (np.array([p00, p11, p10]), np.array([uv00, uv11, uv10]))
                )
        return out

    @classmethod
    def from_offsets(
        cls,
        base_corners: np.ndarray,
        offsets: np.ndarray,
        normal: np.ndarray,
        texture: Texture2D,
        *,
        amplitude: float = 0.1,
        name: str = "",
    ) -> "QuadMesh":
        """Build a mesh by displacing a base quad along its normal.

        ``offsets`` is an (R, C) map in [0, 1] (e.g. the renderer's
        opacity-weighted depth); ``amplitude`` scales world
        displacement. This realises the paper's elevation/offset-map
        extension.
        """
        base_corners = np.asarray(base_corners, dtype=np.float64)
        offsets = np.asarray(offsets, dtype=np.float64)
        if base_corners.shape != (4, 3):
            raise ValueError("base_corners must be (4, 3)")
        if offsets.ndim != 2:
            raise ValueError("offsets must be 2-D")
        normal = np.asarray(normal, dtype=np.float64)
        norm = np.linalg.norm(normal)
        if norm == 0:
            raise ValueError("normal must be non-zero")
        normal = normal / norm
        rows, cols = offsets.shape
        # Bilinear interpolation of the base quad's surface.
        s = np.linspace(0.0, 1.0, cols)[None, :, None]
        t = np.linspace(0.0, 1.0, rows)[:, None, None]
        c0, c1, c2, c3 = base_corners
        surface = (
            (1 - s) * (1 - t) * c0
            + s * (1 - t) * c1
            + s * t * c2
            + (1 - s) * t * c3
        )
        displaced = surface + (offsets[..., None] - 0.5) * amplitude * normal
        return cls(displaced, texture, name=name)


class LineSet(Node):
    """Colored line segments: the AMR grid overlay geometry.

    ``segments`` is (N, 2, 3); one RGBA color for the whole set.
    """

    def __init__(
        self,
        segments: np.ndarray,
        color=(1.0, 1.0, 1.0, 1.0),
        name: str = "",
    ):
        super().__init__(name)
        segments = np.asarray(segments, dtype=np.float64)
        if segments.ndim != 3 or segments.shape[1:] != (2, 3):
            raise ValueError(f"segments must be (N, 2, 3), got {segments.shape}")
        color = np.asarray(color, dtype=np.float32)
        if color.shape != (4,):
            raise ValueError("color must be RGBA")
        self.segments = segments
        self.color = color

    @property
    def n_segments(self) -> int:
        return len(self.segments)
