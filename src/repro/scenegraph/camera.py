"""Cameras: look-at view transforms and orthographic projection."""

from __future__ import annotations

from typing import Tuple

import numpy as np


class Camera:
    """An orthographic look-at camera.

    ``extent`` is the world-space height visible in the image; the
    width scales by the viewport aspect ratio at render time. The
    viewer's trackball interaction orbits this camera around the model
    (IBRAVR needs only direction changes, not perspective).
    """

    def __init__(
        self,
        position=(0.5, 0.5, 3.0),
        target=(0.5, 0.5, 0.5),
        up=(0.0, 1.0, 0.0),
        extent: float = 1.6,
    ):
        self.position = np.asarray(position, dtype=np.float64)
        self.target = np.asarray(target, dtype=np.float64)
        self.up = np.asarray(up, dtype=np.float64)
        if extent <= 0:
            raise ValueError(f"extent must be > 0, got {extent}")
        self.extent = float(extent)
        if np.allclose(self.position, self.target):
            raise ValueError("camera position equals target")

    @property
    def forward(self) -> np.ndarray:
        """Unit vector from camera toward target."""
        f = self.target - self.position
        return f / np.linalg.norm(f)

    def basis(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(right, true_up, forward) orthonormal camera axes."""
        f = self.forward
        up = self.up / np.linalg.norm(self.up)
        if abs(np.dot(f, up)) > 0.999:
            up = np.array([1.0, 0.0, 0.0])
        r = np.cross(f, up)
        r /= np.linalg.norm(r)
        u = np.cross(r, f)
        return r, u, f

    def view_depth(self, points: np.ndarray) -> np.ndarray:
        """Distance along the view direction (for painter sorting)."""
        points = np.asarray(points, dtype=np.float64)
        return (points - self.position) @ self.forward

    def project(
        self, points: np.ndarray, width: int, height: int
    ) -> np.ndarray:
        """World points -> pixel coordinates (x, y) plus view depth.

        Returns (N, 3): pixel x (0..width), pixel y (0..height, y down)
        and depth. Points project orthographically onto the camera
        plane through the target.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(f"points must be (N, 3), got {points.shape}")
        r, u, f = self.basis()
        rel = points - self.target
        x_cam = rel @ r
        y_cam = rel @ u
        depth = self.view_depth(points)
        aspect = width / height
        half_h = self.extent / 2.0
        half_w = half_h * aspect
        px = (x_cam / half_w * 0.5 + 0.5) * width
        py = (0.5 - y_cam / half_h * 0.5) * height
        return np.stack([px, py, depth], axis=1)

    @classmethod
    def orbit(
        cls,
        azimuth_deg: float,
        elevation_deg: float,
        *,
        target=(0.5, 0.5, 0.5),
        distance: float = 3.0,
        extent: float = 1.6,
    ) -> "Camera":
        """Camera orbiting ``target``; azimuth/elevation like a trackball.

        ``azimuth = elevation = 0`` looks down the -x axis toward the
        target (i.e. the +x face of the unit cube fills the view).
        """
        az = np.deg2rad(azimuth_deg)
        el = np.deg2rad(elevation_deg)
        direction = np.array(
            [
                np.cos(el) * np.cos(az),
                np.cos(el) * np.sin(az),
                np.sin(el),
            ]
        )
        position = np.asarray(target) + distance * direction
        return cls(position=position, target=target, up=(0, 0, 1), extent=extent)
