"""Scene graph nodes and hierarchical transforms."""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np


class Node:
    """Base scene graph node: a name, children, and a local transform."""

    def __init__(self, name: str = ""):
        self.name = name
        self.children: List["Node"] = []
        self.visible = True

    def add(self, child: "Node") -> "Node":
        """Append a child; returns the child for chaining."""
        if child is self:
            raise ValueError("a node cannot be its own child")
        self.children.append(child)
        return child

    def remove(self, child: "Node") -> None:
        """Remove a direct child."""
        self.children.remove(child)

    def local_matrix(self) -> np.ndarray:
        """This node's local 4x4 transform (identity by default)."""
        return np.eye(4)

    def traverse(
        self, parent_matrix: Optional[np.ndarray] = None
    ) -> Iterator[tuple]:
        """Depth-first traversal yielding (node, world_matrix) pairs.

        Invisible subtrees are pruned, mirroring scene graph culling.
        """
        if not self.visible:
            return
        matrix = (
            self.local_matrix()
            if parent_matrix is None
            else parent_matrix @ self.local_matrix()
        )
        yield self, matrix
        for child in self.children:
            yield from child.traverse(matrix)

    def find(self, name: str) -> Optional["Node"]:
        """First node with ``name`` in this subtree, or None."""
        for node, _ in self.traverse():
            if node.name == name:
                return node
        return None

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.name!r}, children={len(self.children)})"


class Group(Node):
    """A pure grouping node."""


class Transform(Node):
    """A node applying an explicit 4x4 matrix to its subtree."""

    def __init__(self, name: str = "", matrix: Optional[np.ndarray] = None):
        super().__init__(name)
        self._matrix = np.eye(4) if matrix is None else np.asarray(matrix, float)
        if self._matrix.shape != (4, 4):
            raise ValueError(f"matrix must be 4x4, got {self._matrix.shape}")

    @property
    def matrix(self) -> np.ndarray:
        """The local matrix (assignable)."""
        return self._matrix

    @matrix.setter
    def matrix(self, value: np.ndarray) -> None:
        value = np.asarray(value, float)
        if value.shape != (4, 4):
            raise ValueError(f"matrix must be 4x4, got {value.shape}")
        self._matrix = value

    def local_matrix(self) -> np.ndarray:
        return self._matrix

    # -- convenience constructors ------------------------------------
    @staticmethod
    def translation(tx: float, ty: float, tz: float) -> "Transform":
        """Transform node translating by (tx, ty, tz)."""
        m = np.eye(4)
        m[:3, 3] = (tx, ty, tz)
        return Transform(matrix=m)

    @staticmethod
    def rotation(axis: int, angle_rad: float) -> "Transform":
        """Transform node rotating about a principal axis."""
        if axis not in (0, 1, 2):
            raise ValueError(f"axis must be 0, 1 or 2, got {axis}")
        c, s = np.cos(angle_rad), np.sin(angle_rad)
        m = np.eye(4)
        i, j = [(1, 2), (0, 2), (0, 1)][axis]
        m[i, i] = c
        m[j, j] = c
        m[i, j] = -s if axis != 1 else s
        m[j, i] = s if axis != 1 else -s
        return Transform(matrix=m)

    @staticmethod
    def scaling(sx: float, sy: float, sz: float) -> "Transform":
        """Transform node scaling each axis."""
        m = np.diag([sx, sy, sz, 1.0])
        return Transform(matrix=m)


def transform_points(matrix: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Apply a 4x4 matrix to an (N, 3) array of points."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"points must be (N, 3), got {points.shape}")
    homo = np.hstack([points, np.ones((len(points), 1))])
    out = homo @ matrix.T
    w = out[:, 3:4]
    return out[:, :3] / np.where(np.abs(w) < 1e-15, 1.0, w)
