"""Software rasterizer: textured triangles + lines with alpha blending.

Renders a scene graph through a :class:`~repro.scenegraph.camera.Camera`
into a premultiplied RGBA framebuffer. Semi-transparent textured quads
are depth-sorted and painted back-to-front (exactly how the IBRAVR
viewer composites slab textures on graphics hardware); line sets draw
on top, as the AMR grid overlay does.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.scenegraph.camera import Camera
from repro.scenegraph.geometry import LineSet, QuadMesh, TexturedQuad
from repro.scenegraph.node import Node, transform_points
from repro.scenegraph.texture import Texture2D


def render(
    scene: Node,
    camera: Camera,
    width: int = 256,
    height: int = 256,
    *,
    background=(0.0, 0.0, 0.0, 0.0),
) -> np.ndarray:
    """Rasterize ``scene`` into an (H, W, 4) premultiplied RGBA image."""
    if width < 1 or height < 1:
        raise ValueError("viewport must be at least 1x1")
    frame = np.empty((height, width, 4), dtype=np.float32)
    frame[...] = np.asarray(background, dtype=np.float32)

    tris: List[Tuple[float, np.ndarray, np.ndarray, Texture2D]] = []
    lines: List[Tuple[np.ndarray, np.ndarray]] = []

    for node, matrix in scene.traverse():
        if isinstance(node, (TexturedQuad, QuadMesh)):
            for verts, uvs in node.triangles():
                world = transform_points(matrix, verts)
                depth = float(np.mean(camera.view_depth(world)))
                tris.append((depth, world, uvs, node.texture))
        elif isinstance(node, LineSet) and node.n_segments:
            pts = node.segments.reshape(-1, 3)
            world = transform_points(matrix, pts).reshape(-1, 2, 3)
            lines.append((world, node.color))

    # Painter's algorithm: farthest first so nearer quads blend over.
    tris.sort(key=lambda t: -t[0])
    for _, world, uvs, texture in tris:
        _raster_triangle(frame, camera, world, uvs, texture)

    for world_segments, color in lines:
        _raster_lines(frame, camera, world_segments, color)

    return frame


def _raster_triangle(
    frame: np.ndarray,
    camera: Camera,
    world: np.ndarray,
    uvs: np.ndarray,
    texture: Texture2D,
) -> None:
    height, width = frame.shape[:2]
    proj = camera.project(world, width, height)
    p0, p1, p2 = proj[:, :2]

    area = _edge(p0, p1, p2)
    if abs(area) < 1e-12:
        return  # degenerate in screen space

    lo_x = max(int(np.floor(min(p0[0], p1[0], p2[0]))), 0)
    hi_x = min(int(np.ceil(max(p0[0], p1[0], p2[0]))) + 1, width)
    lo_y = max(int(np.floor(min(p0[1], p1[1], p2[1]))), 0)
    hi_y = min(int(np.ceil(max(p0[1], p1[1], p2[1]))) + 1, height)
    if lo_x >= hi_x or lo_y >= hi_y:
        return

    xs = np.arange(lo_x, hi_x) + 0.5
    ys = np.arange(lo_y, hi_y) + 0.5
    PX, PY = np.meshgrid(xs, ys)
    pts = np.stack([PX, PY], axis=-1)

    # Dividing by the *signed* area normalises the barycentrics, so
    # inside is w >= 0 for either winding (quads are visible from both
    # sides, like textures on glass panes).
    w0 = _edge_grid(p1, p2, pts) / area
    w1 = _edge_grid(p2, p0, pts) / area
    w2 = _edge_grid(p0, p1, pts) / area
    inside = (w0 >= 0) & (w1 >= 0) & (w2 >= 0)
    if not inside.any():
        return

    u = w0 * uvs[0, 0] + w1 * uvs[1, 0] + w2 * uvs[2, 0]
    v = w0 * uvs[0, 1] + w1 * uvs[1, 1] + w2 * uvs[2, 1]
    texels = texture.sample(u[inside], v[inside])

    region = frame[lo_y:hi_y, lo_x:hi_x]
    dest = region[inside]
    alpha = texels[:, 3:4]
    region[inside] = texels + dest * (1.0 - alpha)


def _raster_lines(
    frame: np.ndarray,
    camera: Camera,
    segments: np.ndarray,
    color: np.ndarray,
) -> None:
    height, width = frame.shape[:2]
    pre = color.astype(np.float32).copy()
    pre[:3] *= pre[3]
    for a, b in segments:
        pa = camera.project(a[None, :], width, height)[0, :2]
        pb = camera.project(b[None, :], width, height)[0, :2]
        length = float(np.hypot(*(pb - pa)))
        n = max(int(np.ceil(length)) * 2, 2)
        ts = np.linspace(0.0, 1.0, n)
        xs = np.round(pa[0] + (pb[0] - pa[0]) * ts).astype(int)
        ys = np.round(pa[1] + (pb[1] - pa[1]) * ts).astype(int)
        ok = (xs >= 0) & (xs < width) & (ys >= 0) & (ys < height)
        if not ok.any():
            continue
        # Deduplicate pixels so alpha doesn't double-accumulate.
        flat = np.unique(ys[ok].astype(np.int64) * width + xs[ok])
        yy = flat // width
        xx = flat % width
        dest = frame[yy, xx]
        frame[yy, xx] = pre + dest * (1.0 - pre[3])


def _edge(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> float:
    return (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])


def _edge_grid(a: np.ndarray, b: np.ndarray, pts: np.ndarray) -> np.ndarray:
    return (b[0] - a[0]) * (pts[..., 1] - a[1]) - (b[1] - a[1]) * (
        pts[..., 0] - a[0]
    )
