"""Software rasterizer: textured triangles + lines with alpha blending.

Renders a scene graph through a :class:`~repro.scenegraph.camera.Camera`
into a premultiplied RGBA framebuffer. Semi-transparent textured quads
are depth-sorted and painted back-to-front (exactly how the IBRAVR
viewer composites slab textures on graphics hardware); line sets draw
on top, as the AMR grid overlay does.

Two engines share one setup stage (traversal, a single batched
projection of every triangle vertex and line endpoint, the painter's
depth sort): the default ``vectorized=True`` evaluates edge functions
and barycentric interpolation as array ops over each triangle's
bounding-box pixel grid, while ``vectorized=False`` is the pinned
per-pixel reference walk.  They are bitwise identical because both
apply the same float64 edge/barycentric expressions and the same
float32 texture/blend operations per pixel — the grid just evaluates
them for all pixels at once — and each triangle touches a pixel at most
once, so within-triangle ordering cannot matter.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.scenegraph.camera import Camera
from repro.scenegraph.geometry import LineSet, QuadMesh, TexturedQuad
from repro.scenegraph.node import Node, transform_points
from repro.scenegraph.texture import Texture2D


def render(
    scene: Node,
    camera: Camera,
    width: int = 256,
    height: int = 256,
    *,
    background=(0.0, 0.0, 0.0, 0.0),
    vectorized: bool = True,
) -> np.ndarray:
    """Rasterize ``scene`` into an (H, W, 4) premultiplied RGBA image.

    ``vectorized=False`` selects the per-pixel reference rasterizer
    (bitwise identical to the default grid engine, far slower).
    """
    if width < 1 or height < 1:
        raise ValueError("viewport must be at least 1x1")
    frame = np.empty((height, width, 4), dtype=np.float32)
    frame[...] = np.asarray(background, dtype=np.float32)

    worlds: List[np.ndarray] = []
    uv_list: List[np.ndarray] = []
    textures: List[Texture2D] = []
    lines: List[Tuple[np.ndarray, np.ndarray]] = []

    for node, matrix in scene.traverse():
        if isinstance(node, (TexturedQuad, QuadMesh)):
            for verts, uvs in node.triangles():
                worlds.append(transform_points(matrix, verts))
                uv_list.append(uvs)
                textures.append(node.texture)
        elif isinstance(node, LineSet) and node.n_segments:
            pts = node.segments.reshape(-1, 3)
            world = transform_points(matrix, pts).reshape(-1, 2, 3)
            lines.append((world, node.color))

    if worlds:
        # One projection call for every vertex: both engines must see
        # identical screen coordinates (batched matvecs are not
        # guaranteed bit-stable across batch sizes, so per-triangle
        # calls could not serve as a shared reference).
        flat = np.concatenate(worlds, axis=0)
        projs = camera.project(flat, width, height).reshape(-1, 3, 3)
        depths = camera.view_depth(flat).reshape(-1, 3).mean(axis=1)
        # Painter's algorithm: farthest first so nearer quads blend over.
        order = np.argsort(-depths, kind="stable")
        raster_tri = _raster_triangle if vectorized else _raster_triangle_scalar
        for i in order:
            raster_tri(frame, projs[i], uv_list[i], textures[i])

    for world_segments, color in lines:
        endpoints = camera.project(
            world_segments.reshape(-1, 3), width, height
        )[:, :2].reshape(-1, 2, 2)
        _raster_lines(frame, endpoints, color)

    return frame


def _triangle_bbox(
    proj: np.ndarray, width: int, height: int
) -> Tuple[float, int, int, int, int]:
    """Signed area and clipped integer bounding box shared by both engines."""
    p0, p1, p2 = proj[:, :2]
    area = _edge(p0, p1, p2)
    lo_x = max(int(np.floor(min(p0[0], p1[0], p2[0]))), 0)
    hi_x = min(int(np.ceil(max(p0[0], p1[0], p2[0]))) + 1, width)
    lo_y = max(int(np.floor(min(p0[1], p1[1], p2[1]))), 0)
    hi_y = min(int(np.ceil(max(p0[1], p1[1], p2[1]))) + 1, height)
    return area, lo_x, hi_x, lo_y, hi_y


def _raster_triangle(
    frame: np.ndarray,
    proj: np.ndarray,
    uvs: np.ndarray,
    texture: Texture2D,
) -> None:
    height, width = frame.shape[:2]
    area, lo_x, hi_x, lo_y, hi_y = _triangle_bbox(proj, width, height)
    if abs(area) < 1e-12:
        return  # degenerate in screen space
    if lo_x >= hi_x or lo_y >= hi_y:
        return
    p0, p1, p2 = proj[:, :2]

    xs = np.arange(lo_x, hi_x) + 0.5
    ys = np.arange(lo_y, hi_y) + 0.5
    PX, PY = np.meshgrid(xs, ys)
    pts = np.stack([PX, PY], axis=-1)

    # Dividing by the *signed* area normalises the barycentrics, so
    # inside is w >= 0 for either winding (quads are visible from both
    # sides, like textures on glass panes).
    w0 = _edge_grid(p1, p2, pts) / area
    w1 = _edge_grid(p2, p0, pts) / area
    w2 = _edge_grid(p0, p1, pts) / area
    inside = (w0 >= 0) & (w1 >= 0) & (w2 >= 0)
    if not inside.any():
        return

    u = w0 * uvs[0, 0] + w1 * uvs[1, 0] + w2 * uvs[2, 0]
    v = w0 * uvs[0, 1] + w1 * uvs[1, 1] + w2 * uvs[2, 1]
    texels = texture.sample(u[inside], v[inside])

    region = frame[lo_y:hi_y, lo_x:hi_x]
    dest = region[inside]
    alpha = texels[:, 3:4]
    region[inside] = texels + dest * (1.0 - alpha)


def _raster_triangle_scalar(
    frame: np.ndarray,
    proj: np.ndarray,
    uvs: np.ndarray,
    texture: Texture2D,
) -> None:
    """Per-pixel reference rasterizer (the pinned oracle)."""
    height, width = frame.shape[:2]
    area, lo_x, hi_x, lo_y, hi_y = _triangle_bbox(proj, width, height)
    if abs(area) < 1e-12:
        return
    if lo_x >= hi_x or lo_y >= hi_y:
        return
    p0, p1, p2 = proj[:, :2]

    for y in range(lo_y, hi_y):
        for x in range(lo_x, hi_x):
            pt = np.array([x + 0.5, y + 0.5])
            w0 = _edge_grid(p1, p2, pt) / area
            w1 = _edge_grid(p2, p0, pt) / area
            w2 = _edge_grid(p0, p1, pt) / area
            if not (w0 >= 0 and w1 >= 0 and w2 >= 0):
                continue
            u = w0 * uvs[0, 0] + w1 * uvs[1, 0] + w2 * uvs[2, 0]
            v = w0 * uvs[0, 1] + w1 * uvs[1, 1] + w2 * uvs[2, 1]
            texel = texture.sample(np.array([u]), np.array([v]))[0]
            dest = frame[y, x]
            alpha = texel[3:4]
            frame[y, x] = texel + dest * (1.0 - alpha)


def _raster_lines(
    frame: np.ndarray,
    endpoints: np.ndarray,
    color: np.ndarray,
) -> None:
    height, width = frame.shape[:2]
    pre = color.astype(np.float32).copy()
    pre[:3] *= pre[3]
    for pa, pb in endpoints:
        length = float(np.hypot(*(pb - pa)))
        n = max(int(np.ceil(length)) * 2, 2)
        ts = np.linspace(0.0, 1.0, n)
        xs = np.round(pa[0] + (pb[0] - pa[0]) * ts).astype(int)
        ys = np.round(pa[1] + (pb[1] - pa[1]) * ts).astype(int)
        ok = (xs >= 0) & (xs < width) & (ys >= 0) & (ys < height)
        if not ok.any():
            continue
        # Deduplicate pixels so alpha doesn't double-accumulate.
        flat = np.unique(ys[ok].astype(np.int64) * width + xs[ok])
        yy = flat // width
        xx = flat % width
        dest = frame[yy, xx]
        frame[yy, xx] = pre + dest * (1.0 - pre[3])


def _edge(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> float:
    return (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])


def _edge_grid(a: np.ndarray, b: np.ndarray, pts: np.ndarray) -> np.ndarray:
    return (b[0] - a[0]) * (pts[..., 1] - a[1]) - (b[1] - a[1]) * (
        pts[..., 0] - a[0]
    )
