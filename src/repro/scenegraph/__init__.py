"""A compact scene graph with a software rasterizer.

Stands in for the OpenRM scene graph the paper's viewer embeds: "a set
of specialized data structures and associated services that provide
management of displayable data and rendering services" (section 3.1).
It supports the primitive classes the paper lists -- textured
quads/meshes for IBRAVR imagery, line sets for AMR grid geometry --
plus hierarchical transforms, cameras, and semaphore-protected
asynchronous updates (one render thread, many I/O threads).
"""

from repro.scenegraph.node import Group, Node, Transform
from repro.scenegraph.geometry import LineSet, QuadMesh, TexturedQuad
from repro.scenegraph.texture import Texture2D
from repro.scenegraph.camera import Camera
from repro.scenegraph.raster import render
from repro.scenegraph.locks import SceneLock

__all__ = [
    "Group",
    "Node",
    "Transform",
    "LineSet",
    "QuadMesh",
    "TexturedQuad",
    "Texture2D",
    "Camera",
    "render",
    "SceneLock",
]
