"""Consolidated configuration: one frozen dataclass per layer.

Historically every knob rode in as its own keyword argument --
``tcp_params`` here, ``compression`` there, nine overlap knobs on the
back end. This module gathers them:

- :class:`NetworkConfig` -- how an endpoint uses the wire (TCP
  parameters, optional compression, optional request policy);
- :class:`BackendConfig` -- how the parallel back end runs (overlap
  mode and its tuning, jitter, seed) plus its network config;
- :class:`ExperimentConfig` -- one runnable experiment (a named
  campaign plus overrides), JSON round-trippable so a drill or a CI
  matrix can be a file.

The old keyword arguments still work but raise
:class:`DeprecationWarning`; they will be removed after one release.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import asdict, dataclass, field, fields, replace
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.faults.plan import FaultPlan
from repro.faults.policy import RequestPolicy
from repro.netsim.tcp import TcpParams
from repro.util.units import MB, mbps

if TYPE_CHECKING:  # pragma: no cover - avoids a cycle through repro.dpss
    from repro.dpss.compression import CompressionModel

#: Sentinel distinguishing "not passed" from "passed None" in
#: deprecated keyword arguments.
_UNSET: Any = object()


def warn_deprecated_kwarg(owner: str, old: str, new: str) -> None:
    """Emit the standard deprecation warning for a legacy kwarg."""
    warnings.warn(
        f"{owner}({old}=...) is deprecated; pass {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class StripeConfig:
    """RAID-5 parity striping across the DPSS server set.

    ``enabled=False`` (the default) keeps the historical round-robin
    placement and per-server fan-out, byte-identical ULM logs
    included. When enabled, datasets are laid out by a
    :class:`~repro.dpss.stripe.StripeMap` over ``n_data + n_parity``
    servers and reads go through the redundant k-of-n requestor: a
    slow or crashed server's blocks are reconstructed by XOR from the
    other servers' blocks plus parity instead of waiting out a
    timeout+retry round trip.

    ``read_policy`` picks the redundancy mode:

    - ``"hedged"`` (the default) -- issue only the data shares;
      launch the parity repair share when a server is known-unhealthy
      at launch or after ``straggler_after`` seconds without
      completion. Fault-free reads are byte-identical on the wire to
      the unstriped path.
    - ``"eager"`` -- issue all ``n`` shares (data + parity) up front,
      complete on the first ``k`` arrivals, cancel the straggler.
      Fault-free reads pay the parity bandwidth overhead (``1/n_data``
      plus any boundary-stripe filler blocks, which dominate on reads
      much smaller than a stripe) in exchange for a p99 that never
      waits on a straggler timer.

    ``timeout`` is the final backstop deadline; blocks still missing
    then are delivered absent (the PR 3 degradation path).
    ``health_half_life`` is the fault-penalty decay half-life of the
    per-server :class:`~repro.dpss.health.HealthTracker`;
    ``avoid_threshold`` the health score at which the initial read
    set is biased away from a server.
    """

    enabled: bool = False
    n_data: int = 4
    n_parity: int = 1
    read_policy: str = "hedged"
    straggler_after: float = 0.25
    timeout: float = 30.0
    health_half_life: float = 20.0
    avoid_threshold: float = 0.75

    def __post_init__(self):
        if self.n_data < 2:
            raise ValueError(f"n_data must be >= 2, got {self.n_data}")
        if self.n_parity != 1:
            raise ValueError(
                f"XOR parity supports exactly n_parity=1, got "
                f"{self.n_parity}"
            )
        if self.read_policy not in ("eager", "hedged"):
            raise ValueError(
                f"read_policy must be 'eager' or 'hedged', got "
                f"{self.read_policy!r}"
            )
        for attr in ("straggler_after", "timeout", "health_half_life"):
            if getattr(self, attr) <= 0:
                raise ValueError(
                    f"{attr} must be > 0, got {getattr(self, attr)}"
                )
        if self.avoid_threshold < 0:
            raise ValueError(
                f"avoid_threshold must be >= 0, got {self.avoid_threshold}"
            )

    @property
    def width(self) -> int:
        """The stripe width: servers per stripe (data + parity)."""
        return self.n_data + self.n_parity

    @classmethod
    def from_spec(cls, spec: str, **changes: Any) -> "StripeConfig":
        """Parse the CLI spec form ``"4+1"`` or ``"4+1:eager"``.

        The first part is ``n_data + n_parity``; the optional suffix
        after ``:`` is the read policy.
        """
        text = spec.strip()
        policy = None
        if ":" in text:
            text, _, policy = text.partition(":")
        try:
            n_data_s, _, n_parity_s = text.partition("+")
            n_data, n_parity = int(n_data_s), int(n_parity_s)
        except ValueError:
            raise ValueError(
                f"stripe spec must look like '4+1' or '4+1:hedged', "
                f"got {spec!r}"
            ) from None
        kwargs: Dict[str, Any] = {
            "enabled": True, "n_data": n_data, "n_parity": n_parity,
        }
        if policy is not None:
            kwargs["read_policy"] = policy
        kwargs.update(changes)
        return cls(**kwargs)

    def spec(self) -> str:
        """The canonical spec string ``from_spec`` round-trips."""
        base = f"{self.n_data}+{self.n_parity}"
        return base if self.read_policy == "hedged" else (
            f"{base}:{self.read_policy}"
        )

    def with_changes(self, **changes: Any) -> "StripeConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class NetworkConfig:
    """How one endpoint drives its connections.

    ``policy`` enables client-side fault tolerance (timeouts, retries,
    hedged reads) on DPSS reads; ``None`` keeps the historical
    fail-fast behaviour, bit-identical to before the policy existed.

    ``reserved_rate`` is a QoS bandwidth floor (bytes/s) applied to
    every transfer this endpoint initiates: it becomes the
    :class:`~repro.simcore.fluid.FluidTask` floor that
    :func:`repro.simcore.fairshare.max_min_allocation` honours in its
    phase-1 grants. The serving layer uses it to express fair-share
    weights across admitted sessions; 0 keeps plain max-min sharing.

    ``stripe`` enables parity-striped redundant reads (see
    :class:`StripeConfig`); the default disabled config keeps the
    historical per-server fan-out.
    """

    tcp: TcpParams = field(default_factory=TcpParams)
    compression: Optional[CompressionModel] = None
    policy: Optional[RequestPolicy] = None
    reserved_rate: float = 0.0
    stripe: StripeConfig = field(default_factory=StripeConfig)

    def with_changes(self, **changes: Any) -> "NetworkConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class TileConfig:
    """The tile-based distributed framebuffer mode.

    ``enabled=False`` (the default) keeps the historical whole-slab
    transport, byte-identical ULM logs included. When enabled, each
    PE's slab render is split on a ``tile_size`` grid, fragments are
    routed to deterministic tile owners over the interconnect, and
    owners send their composited tiles to the viewer with delta
    transmission: a tile unchanged since the last delivered frame
    travels as a header-plus-hash reference instead of pixels.

    ``change_fraction`` drives the deterministic, RNG-free model of
    how much of the screen changes per timestep (camera orbit or data
    evolution); ``frustum`` restricts a viewer to a fractional
    viewport rect ``(x0, y0, x1, y1)`` so partially-overlapping
    viewers share tile renders through the cache.
    """

    enabled: bool = False
    tile_size: int = 32
    change_fraction: float = 0.3
    frustum: Optional[Tuple[float, float, float, float]] = None

    def __post_init__(self):
        if self.tile_size < 1:
            raise ValueError(
                f"tile_size must be >= 1, got {self.tile_size}"
            )
        if not 0.0 <= self.change_fraction <= 1.0:
            raise ValueError(
                f"change_fraction must be in [0, 1], got "
                f"{self.change_fraction}"
            )
        if self.frustum is not None:
            x0, y0, x1, y1 = self.frustum
            if not (0.0 <= x0 < x1 <= 1.0 and 0.0 <= y0 < y1 <= 1.0):
                raise ValueError(
                    f"frustum must satisfy 0 <= lo < hi <= 1, got "
                    f"{self.frustum}"
                )

    def with_changes(self, **changes: Any) -> "TileConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class SiteSpec:
    """One serving site: a DPSS cache with an edge serving the region.

    The paper's architecture is inherently multi-site -- DPSS caches
    near the data, back ends near the compute, viewers at the edge --
    and a :class:`SiteSpec` names one such point of presence. Rates
    are bytes/s; ``max_sessions``/``queue_depth`` drive the site's
    Icarus-style admission gate (``None`` = unlimited slots);
    ``cache_bytes`` sizes the site's edge render cache (0 = off);
    ``dpss_cache_bytes`` warms the site's DPSS block servers.
    """

    name: str
    dpss_rate: float = mbps(1000.0)
    edge_rate: float = mbps(1000.0)
    max_sessions: Optional[int] = None
    queue_depth: int = 0
    cache_bytes: float = 0.0
    dpss_cache_bytes: float = 0.0

    def __post_init__(self):
        if not self.name:
            raise ValueError("site name must be non-empty")
        for attr in ("dpss_rate", "edge_rate", "cache_bytes",
                     "dpss_cache_bytes"):
            if getattr(self, attr) < 0:
                raise ValueError(
                    f"{attr} must be >= 0, got {getattr(self, attr)}"
                )
        if self.max_sessions is not None and self.max_sessions < 0:
            raise ValueError(
                f"max_sessions must be >= 0, got {self.max_sessions}"
            )
        if self.queue_depth < 0:
            raise ValueError(
                f"queue_depth must be >= 0, got {self.queue_depth}"
            )

    def with_changes(self, **changes: Any) -> "SiteSpec":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class SiteLink:
    """A dedicated inter-site WAN link (bytes/s each direction)."""

    a: str
    b: str
    rate: float

    def __post_init__(self):
        if not self.a or not self.b:
            raise ValueError("link endpoints must be non-empty")
        if self.a == self.b:
            raise ValueError(f"link endpoints must differ, got {self.a!r}")
        if self.rate <= 0:
            raise ValueError(f"link rate must be > 0, got {self.rate}")


@dataclass(frozen=True)
class TopologyConfig:
    """A multi-region serving fabric: sites, inter-site WAN, placement.

    ``links`` are dedicated site pairs; any pair without a dedicated
    link shares the ``core_rate`` WAN core bus (0 disables spilling
    over undeclared paths). ``placement`` picks the serving site for
    each arrival:

    - ``"nearest"`` -- serve at the home site, spill to the least
      loaded remote site only when home is saturated;
    - ``"least-loaded"`` -- always serve at the least loaded site
      (home breaks ties).

    ``spill=False`` pins every session to its home site (saturation
    queues or rejects instead of spilling).
    """

    sites: Tuple[SiteSpec, ...] = (SiteSpec(name="local"),)
    links: Tuple[SiteLink, ...] = ()
    placement: str = "nearest"
    spill: bool = True
    core_rate: float = mbps(622.0)

    def __post_init__(self):
        if not self.sites:
            raise ValueError("topology needs at least one site")
        names = [s.name for s in self.sites]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate site names in {names}")
        if self.placement not in ("nearest", "least-loaded"):
            raise ValueError(
                f"placement must be 'nearest' or 'least-loaded', "
                f"got {self.placement!r}"
            )
        if self.core_rate < 0:
            raise ValueError(
                f"core_rate must be >= 0, got {self.core_rate}"
            )
        known = set(names)
        seen_pairs = set()
        for link in self.links:
            for end in (link.a, link.b):
                if end not in known:
                    raise ValueError(
                        f"link {link.a}-{link.b} references unknown "
                        f"site {end!r}"
                    )
            pair = (min(link.a, link.b), max(link.a, link.b))
            if pair in seen_pairs:
                raise ValueError(
                    f"duplicate link between {pair[0]!r} and {pair[1]!r}"
                )
            seen_pairs.add(pair)

    def with_changes(self, **changes: Any) -> "TopologyConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    @property
    def site_names(self) -> Tuple[str, ...]:
        """Site names in declaration order."""
        return tuple(s.name for s in self.sites)

    def site(self, name: str) -> SiteSpec:
        """Look up a site by name."""
        for s in self.sites:
            if s.name == name:
                return s
        raise KeyError(f"unknown site {name!r}")

    @classmethod
    def single_site(cls, **site_changes: Any) -> "TopologyConfig":
        """The degenerate one-site fabric (the pre-shard serving layer)."""
        return cls(sites=(SiteSpec(name="local").with_changes(**site_changes),))


@dataclass(frozen=True)
class FlowClassConfig:
    """Allocator aggregation mode for the sharded serving layer.

    ``enabled=True`` aggregates same-profile sessions into one fluid
    flow per class (allocator cost scales with profile count);
    ``enabled=False`` is the per-session oracle -- one flow per
    session, PR 5 style -- which parity tests pin the aggregate mode
    against bitwise.
    """

    enabled: bool = True

    def with_changes(self, **changes: Any) -> "FlowClassConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


def _sc99_wan_topology() -> TopologyConfig:
    """Three paper sites: the LBL DPSS, ANL, and the SC99 floor."""
    return TopologyConfig(
        sites=(
            SiteSpec(name="lbl", dpss_rate=mbps(2000.0),
                     edge_rate=mbps(1000.0), max_sessions=64,
                     queue_depth=256, cache_bytes=256 * MB),
            SiteSpec(name="anl", dpss_rate=mbps(1000.0),
                     edge_rate=mbps(622.0), max_sessions=48,
                     queue_depth=256, cache_bytes=128 * MB),
            SiteSpec(name="showfloor", dpss_rate=mbps(1000.0),
                     edge_rate=mbps(1500.0), max_sessions=48,
                     queue_depth=256, cache_bytes=128 * MB),
        ),
        links=(
            SiteLink("lbl", "anl", mbps(622.0)),
            SiteLink("lbl", "showfloor", mbps(1500.0)),
        ),
        placement="nearest",
        core_rate=mbps(622.0),
    )


def _serve10k_topology() -> TopologyConfig:
    """Four equal regions sized for the 10k-session scale campaign."""
    sites = tuple(
        SiteSpec(
            name=f"region{i}",
            dpss_rate=mbps(4000.0),
            edge_rate=mbps(4000.0),
            max_sessions=400,
            queue_depth=10000,
            cache_bytes=512 * MB,
        )
        for i in range(4)
    )
    return TopologyConfig(
        sites=sites, placement="nearest", core_rate=mbps(2500.0)
    )


#: Named topology registry: name -> factory. The CLI's ``--topology``
#: flag and :class:`ExperimentConfig.topology` resolve through this.
_NAMED_TOPOLOGIES: Dict[str, Callable[[], TopologyConfig]] = {
    "single-site": TopologyConfig.single_site,
    "sc99-wan": _sc99_wan_topology,
    "serve10k": _serve10k_topology,
}


def topology_names() -> List[str]:
    """Names accepted by :func:`named_topology`, sorted."""
    return sorted(_NAMED_TOPOLOGIES)


def named_topology(name: str) -> TopologyConfig:
    """Resolve a topology by its registry name."""
    try:
        factory = _NAMED_TOPOLOGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown topology {name!r}; known: "
            f"{', '.join(topology_names())}"
        ) from None
    return factory()


@dataclass(frozen=True)
class BackendConfig:
    """The parallel back end's run mode and tuning.

    Field semantics match the historical ``SimBackEnd`` keyword
    arguments one-for-one; see that class for the paper context.
    """

    overlapped: bool = False
    overlap_depth: int = 2
    mpi_only_overlap: bool = False
    interconnect_rate: float = 100e6
    axis: int = 0
    overlap_render_share: float = 1.0
    overlap_ingest_factor: float = 1.0
    load_jitter_cv: float = 0.0
    geometry_bytes_per_frame: Optional[float] = None
    seed: int = 0
    n_timesteps: Optional[int] = None
    network: NetworkConfig = field(default_factory=NetworkConfig)
    tiles: TileConfig = field(default_factory=TileConfig)

    def with_changes(self, **changes: Any) -> "BackendConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


#: BackendConfig field names that used to be SimBackEnd kwargs.
#: ``network`` and ``tiles`` never were kwargs -- they postdate the
#: config refactor -- so they are not part of the legacy shim.
BACKEND_LEGACY_FIELDS = tuple(
    f.name
    for f in fields(BackendConfig)
    if f.name not in ("network", "tiles")
)


@dataclass(frozen=True)
class ExperimentConfig:
    """One runnable experiment: a named campaign plus overrides.

    This is the JSON-facing configuration the CLI and
    :func:`repro.api.run_experiment` consume::

        {
          "campaign": "sc99_showfloor",
          "scaled": true,
          "seed": 7,
          "sanitize": true,
          "policy": "aggressive",
          "faults": {"events": [...]}
        }
    """

    campaign: str
    overlapped: bool = False
    frames: Optional[int] = None
    scaled: bool = False
    seed: Optional[int] = None
    sanitize: bool = False
    faults: Optional[FaultPlan] = None
    policy: Optional[RequestPolicy] = None
    tiles: bool = False
    tile_size: Optional[int] = None
    #: parity-striping spec (:meth:`StripeConfig.from_spec` form,
    #: e.g. ``"4+1"`` or ``"4+1:hedged"``); ``None`` keeps striping off
    stripe: Optional[str] = None
    #: named multi-site topology for shard campaigns (``visapult list``
    #: of :func:`topology_names`); ``None`` keeps the campaign default
    topology: Optional[str] = None
    #: flow-class aggregation override for shard campaigns; ``None``
    #: keeps the campaign default, ``False`` forces the per-session
    #: oracle allocator
    flow_classes: Optional[bool] = None

    def with_changes(self, **changes: Any) -> "ExperimentConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    # -- JSON ----------------------------------------------------------
    @classmethod
    def from_json(cls, text: str) -> "ExperimentConfig":
        """Parse an experiment from its JSON object form."""
        from repro.faults import policy_from_spec

        data = json.loads(text)
        if not isinstance(data, dict) or "campaign" not in data:
            raise ValueError(
                "experiment JSON must be an object with a 'campaign' key"
            )
        faults = data.get("faults")
        if faults is not None and not isinstance(faults, FaultPlan):
            faults = FaultPlan.from_json(json.dumps(faults))
        return cls(
            campaign=data["campaign"],
            overlapped=bool(data.get("overlapped", False)),
            frames=data.get("frames"),
            scaled=bool(data.get("scaled", False)),
            seed=data.get("seed"),
            sanitize=bool(data.get("sanitize", False)),
            faults=faults,
            policy=policy_from_spec(data.get("policy")),
            tiles=bool(data.get("tiles", False)),
            tile_size=data.get("tile_size"),
            stripe=data.get("stripe"),
            topology=data.get("topology"),
            flow_classes=data.get("flow_classes"),
        )

    @classmethod
    def from_json_file(cls, path: str) -> "ExperimentConfig":
        """Load an experiment from a JSON file."""
        with open(path) as f:
            return cls.from_json(f.read())

    def to_json(self, *, indent: int = 2) -> str:
        """Serialise to the JSON object form ``from_json`` accepts."""
        out: Dict[str, Any] = {
            "campaign": self.campaign,
            "overlapped": self.overlapped,
            "frames": self.frames,
            "scaled": self.scaled,
            "seed": self.seed,
            "sanitize": self.sanitize,
        }
        if self.faults is not None:
            out["faults"] = json.loads(self.faults.to_json())
        if self.policy is not None:
            out["policy"] = asdict(self.policy)
        if self.tiles:
            out["tiles"] = True
        if self.tile_size is not None:
            out["tile_size"] = self.tile_size
        if self.stripe is not None:
            out["stripe"] = self.stripe
        if self.topology is not None:
            out["topology"] = self.topology
        if self.flow_classes is not None:
            out["flow_classes"] = self.flow_classes
        return json.dumps(out, indent=indent)

    def _stripe_config(self) -> Optional[StripeConfig]:
        """The StripeConfig implied by the JSON-level stripe spec."""
        if self.stripe is None:
            return None
        return StripeConfig.from_spec(self.stripe)

    def _tile_config(self) -> Optional[TileConfig]:
        """The TileConfig implied by the JSON-level tile knobs."""
        if not self.tiles and self.tile_size is None:
            return None
        kwargs: Dict[str, Any] = {"enabled": self.tiles}
        if self.tile_size is not None:
            kwargs["tile_size"] = self.tile_size
        return TileConfig(**kwargs)

    def to_campaign_config(self):
        """Resolve to a concrete :class:`~repro.core.campaign.CampaignConfig`."""
        from repro.core.campaign import named_campaign

        config = named_campaign(self.campaign, overlapped=self.overlapped)
        if hasattr(config, "flow_classes"):
            # A shard campaign: topology-first knobs apply directly.
            changes: Dict[str, Any] = {}
            if self.topology is not None:
                changes["topology"] = named_topology(self.topology)
            if self.flow_classes is not None:
                changes["flow_classes"] = FlowClassConfig(
                    enabled=self.flow_classes
                )
            if self.seed is not None:
                changes["seed"] = self.seed
            if self.frames is not None:
                changes["frames"] = self.frames
            if self.stripe is not None:
                raise ValueError(
                    f"campaign {self.campaign!r} is a shard campaign; "
                    f"striping applies to single-session and service "
                    f"campaigns only"
                )
            return config.with_changes(**changes) if changes else config
        if self.topology is not None or self.flow_classes is not None:
            raise ValueError(
                f"campaign {self.campaign!r} is not a shard campaign; "
                f"topology/flow_classes apply to shard campaigns only"
            )
        if not hasattr(config, "n_timesteps"):
            # A service campaign: the single-session knobs apply to its
            # base config, the seed to the service run as a whole.
            base_changes: Dict[str, Any] = {}
            if self.frames is not None:
                base_changes["n_timesteps"] = self.frames
            if self.scaled:
                base_changes["shape"] = (160, 64, 64)
                base_changes["dataset_timesteps"] = max(
                    self.frames if self.frames is not None
                    else config.base.n_timesteps,
                    8,
                )
            if self.faults is not None:
                base_changes["faults"] = self.faults
            if self.policy is not None:
                base_changes["policy"] = self.policy
            tiles = self._tile_config()
            if tiles is not None:
                base_changes["tiles"] = tiles
            stripe = self._stripe_config()
            if stripe is not None:
                base_changes["stripe"] = stripe
            if base_changes:
                config = config.with_changes(
                    base=config.base.with_changes(**base_changes)
                )
            if self.seed is not None:
                config = config.with_changes(seed=self.seed)
            return config
        changes: Dict[str, Any] = {}
        frames = self.frames if self.frames is not None else config.n_timesteps
        if self.frames is not None:
            changes["n_timesteps"] = self.frames
        if self.scaled:
            changes["shape"] = (160, 64, 64)
            changes["dataset_timesteps"] = max(frames, 8)
        if self.seed is not None:
            changes["seed"] = self.seed
        if self.faults is not None:
            changes["faults"] = self.faults
        if self.policy is not None:
            changes["policy"] = self.policy
        tiles = self._tile_config()
        if tiles is not None:
            changes["tiles"] = tiles
        stripe = self._stripe_config()
        if stripe is not None:
            changes["stripe"] = stripe
        return config.with_changes(**changes) if changes else config
