"""Multi-viewer serving layer: sessions, admission, shared caches.

The paper ran one viewer against one back end; this package runs many.
A :class:`SessionManager` multiplexes concurrent viewer sessions over a
shared back-end PE pool and a shared DPSS site, applying an
:class:`AdmissionPolicy` (session cap + FIFO queue, token bucket on
aggregate bandwidth, fair-share QoS floors), while a shared
:class:`RenderCache` lets one session's finished slab textures serve
the next session's identical requests -- skipping both the DPSS read
and the render leg. Workloads are seeded and deterministic
(:class:`WorkloadSpec`); results aggregate into a
:class:`ServiceResult` carrying :class:`ServiceMetrics` (admission
latency, time-to-first-frame, sustained frame rates, cache hit ratio,
p50/p95/p99 tails).
"""

from repro.service.admission import (
    AdmissionPolicy,
    AdmissionVerdict,
    SlotQueue,
    TokenBucket,
)
from repro.service.cache import (
    CacheConfig,
    CacheStats,
    EdgeCacheModel,
    RenderCache,
)
from repro.service.manager import (
    ServiceCampaign,
    ServiceResult,
    SessionManager,
    run_service_campaign,
)
from repro.service.metrics import (
    RESULT_SCHEMA_VERSION,
    ServiceMetrics,
    SessionRecord,
    ShardMetrics,
    SiteMetrics,
    percentile,
    result_payload,
)
from repro.service.shard import (
    ShardCampaign,
    ShardResult,
    ShardedSessionManager,
    run_shard_campaign,
)
from repro.service.workload import ViewerProfile, WorkloadSpec

__all__ = [
    "AdmissionPolicy",
    "AdmissionVerdict",
    "CacheConfig",
    "CacheStats",
    "EdgeCacheModel",
    "RESULT_SCHEMA_VERSION",
    "RenderCache",
    "ServiceCampaign",
    "ServiceMetrics",
    "ServiceResult",
    "SessionManager",
    "SessionRecord",
    "ShardCampaign",
    "ShardMetrics",
    "ShardResult",
    "ShardedSessionManager",
    "SiteMetrics",
    "SlotQueue",
    "TokenBucket",
    "ViewerProfile",
    "WorkloadSpec",
    "percentile",
    "result_payload",
    "run_service_campaign",
    "run_shard_campaign",
]
