"""Multi-viewer serving layer: sessions, admission, shared caches.

The paper ran one viewer against one back end; this package runs many.
A :class:`SessionManager` multiplexes concurrent viewer sessions over a
shared back-end PE pool and a shared DPSS site, applying an
:class:`AdmissionPolicy` (session cap + FIFO queue, token bucket on
aggregate bandwidth, fair-share QoS floors), while a shared
:class:`RenderCache` lets one session's finished slab textures serve
the next session's identical requests -- skipping both the DPSS read
and the render leg. Workloads are seeded and deterministic
(:class:`WorkloadSpec`); results aggregate into a
:class:`ServiceResult` carrying :class:`ServiceMetrics` (admission
latency, time-to-first-frame, sustained frame rates, cache hit ratio,
p50/p95/p99 tails).
"""

from repro.service.admission import AdmissionPolicy, TokenBucket
from repro.service.cache import CacheConfig, CacheStats, RenderCache
from repro.service.manager import (
    ServiceCampaign,
    ServiceResult,
    SessionManager,
    run_service_campaign,
)
from repro.service.metrics import ServiceMetrics, SessionRecord, percentile
from repro.service.workload import ViewerProfile, WorkloadSpec

__all__ = [
    "AdmissionPolicy",
    "CacheConfig",
    "CacheStats",
    "RenderCache",
    "ServiceCampaign",
    "ServiceMetrics",
    "ServiceResult",
    "SessionManager",
    "SessionRecord",
    "TokenBucket",
    "ViewerProfile",
    "WorkloadSpec",
    "percentile",
    "run_service_campaign",
]
