"""The shared render cache: rendered slab textures reused across viewers.

One viewer's back end renders a slab; every other session asking for
the same ``(dataset, timestep, axis, slab)`` key is served the finished
texture from cache, skipping both the DPSS read *and* the render leg.
That changes the per-session frame accounting: a fully warm frame pays
neither L nor R, only the viewer transmit, so the paper's
``To = N*max(L,R) + min(L,R)`` collapses toward the send cost.

Consistency rules (DESIGN.md section 11):

- Entries are immutable once published; keys name a timestep of an
  immutable dataset, so there is no invalidation path.
- Concurrent misses on one key coalesce: the first caller leads (does
  the load + render), later callers wait on an in-flight claim and are
  served when the leader publishes.
- A degraded render (the leader's DPSS read gave up on bytes under
  injected faults) is *abandoned*, never published: partial textures
  must not be served to sessions whose own read might have succeeded.
  Abandoned waiters retry and one of them becomes the new leader.
- Eviction is LRU by size budget; publishing never evicts the entry
  just inserted, and an entry larger than the whole budget is served
  to its waiters but not retained (mirroring the DPSS block cache).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.netlogger.events import Tags
from repro.netlogger.logger import NetLogger
from repro.simcore.env import Environment
from repro.simcore.events import Event
from repro.util.units import MB
from repro.util.validation import check_non_negative

#: cache key: (dataset, timestep, axis, slab position, slab extent)
CacheKey = Tuple[Hashable, ...]


@dataclass(frozen=True)
class CacheConfig:
    """Size budget and switch for the shared render cache."""

    capacity_bytes: float = 256 * MB
    enabled: bool = True

    def __post_init__(self):
        check_non_negative("capacity_bytes", self.capacity_bytes)


@dataclass
class CacheStats:
    """Lookup outcomes and LRU bookkeeping counters.

    ``hits`` counts lookups served from the store plus waiters served
    by a leader's publish; ``misses`` counts lookups that had to do the
    work (leads). ``coalesced`` counts lookups parked behind an
    in-flight lead (their eventual outcome lands in hits, or back in
    misses after an abandon and retry).
    """

    hits: int = 0
    misses: int = 0
    coalesced: int = 0
    inserts: int = 0
    evictions: int = 0
    abandons: int = 0
    bytes_cached: float = 0.0

    @property
    def lookups(self) -> int:
        """Resolved lookups (hit or lead)."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of resolved lookups served without load + render."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class CacheClaim:
    """Outcome of :meth:`RenderCache.begin` for one lookup.

    ``status`` is ``"hit"`` (texture available now), ``"lead"`` (the
    caller must load + render, then :meth:`~RenderCache.publish` or
    :meth:`~RenderCache.abandon`), or ``"wait"`` (yield ``event``; its
    value is True when the leader published, False when it abandoned
    and the caller should call ``begin`` again).
    """

    status: str
    event: Optional[Event] = None


@dataclass
class _Entry:
    nbytes: float


class RenderCache:
    """LRU texture cache shared by every session's back end.

    Deterministic by construction: pure dictionary bookkeeping driven
    by the simulation's own event order, no clocks or randomness. All
    outcomes are stamped as ``CACHE_*`` NetLogger events.
    """

    def __init__(
        self,
        env: Environment,
        config: Optional[CacheConfig] = None,
        *,
        daemon: Any = None,
    ):
        self.env = env
        self.config = config if config is not None else CacheConfig()
        self.capacity_bytes = float(self.config.capacity_bytes)
        self.stats = CacheStats()
        self.logger = NetLogger(
            "render-cache",
            "cache",
            clock=lambda: env.now,
            daemon=daemon,
        )
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        #: in-flight leads: key -> events of coalesced waiters
        self._inflight: Dict[CacheKey, List[Event]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    # -- lookup protocol ---------------------------------------------
    def begin(self, key: CacheKey, **fields: Any) -> CacheClaim:
        """Resolve one lookup: hit, coalesced wait, or lead."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            self.logger.log(
                Tags.CACHE_HIT, nbytes=round(entry.nbytes), **fields
            )
            return CacheClaim("hit")
        if key in self._inflight:
            event = Event(self.env)
            self._inflight[key].append(event)
            self.stats.coalesced += 1
            self.logger.log(Tags.CACHE_WAIT, **fields)
            return CacheClaim("wait", event=event)
        self._inflight[key] = []
        self.stats.misses += 1
        self.logger.log(Tags.CACHE_MISS, **fields)
        return CacheClaim("lead")

    def publish(self, key: CacheKey, nbytes: float, **fields: Any) -> None:
        """A leader finished rendering: insert and serve the waiters."""
        waiters = self._inflight.pop(key)
        self._insert(key, float(nbytes), **fields)
        self.stats.hits += len(waiters)
        for event in waiters:
            event.succeed(True)

    def abandon(self, key: CacheKey, **fields: Any) -> None:
        """A leader's slab came up short: cache nothing, wake waiters.

        Waiters receive False and retry; whoever retries first becomes
        the new leader and issues its own DPSS read.
        """
        waiters = self._inflight.pop(key)
        self.stats.abandons += 1
        self.logger.log(Tags.CACHE_ABANDON, **fields)
        for event in waiters:
            event.succeed(False)

    # -- LRU store ----------------------------------------------------
    def _insert(self, key: CacheKey, nbytes: float, **fields: Any) -> None:
        if nbytes > self.capacity_bytes:
            # Served to the waiters (the texture exists in the leader's
            # memory) but too big to retain -- same guard as the DPSS
            # block cache.
            return
        self._entries[key] = _Entry(nbytes)
        self._entries.move_to_end(key)
        self.stats.bytes_cached += nbytes
        self.stats.inserts += 1
        self.logger.log(Tags.CACHE_INSERT, nbytes=round(nbytes), **fields)
        while self.stats.bytes_cached > self.capacity_bytes:
            old_key, old = self._entries.popitem(last=False)
            self.stats.bytes_cached -= old.nbytes
            self.stats.evictions += 1
            self.logger.log(
                Tags.CACHE_EVICT, nbytes=round(old.nbytes), **fields
            )


class EdgeCacheModel:
    """Byte-budget LRU occupancy model for a shard site's edge cache.

    The sharded serving layer models sessions as fluid transfers, not
    full render pipelines, so its per-site render cache only needs the
    *occupancy* half of :class:`RenderCache`: which working sets are
    resident under an LRU byte budget. ``lookup`` resolves immediately
    -- a hit means the site already holds the profile's rendered
    frames (the session skips the DPSS leg), a miss charges the bytes
    and evicts LRU losers. Coalescing/claims are unnecessary because
    the model inserts at decision time and entries are immutable.

    Counters land in the same :class:`CacheStats` shape the full cache
    uses, so service metrics aggregate both identically.
    """

    def __init__(self, capacity_bytes: float):
        check_non_negative("capacity_bytes", capacity_bytes)
        self.capacity_bytes = float(capacity_bytes)
        self.stats = CacheStats()
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def lookup(self, key: CacheKey, nbytes: float) -> bool:
        """True on a resident hit; a miss inserts ``nbytes`` under LRU.

        A zero-capacity model never hits and never stores (the cache
        is off); an entry larger than the whole budget is a miss that
        is not retained, mirroring :meth:`RenderCache._insert`.
        """
        if self.capacity_bytes <= 0:
            self.stats.misses += 1
            return False
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        nbytes = float(nbytes)
        if nbytes > self.capacity_bytes:
            return False
        self._entries[key] = _Entry(nbytes)
        self.stats.bytes_cached += nbytes
        self.stats.inserts += 1
        while self.stats.bytes_cached > self.capacity_bytes:
            _old_key, old = self._entries.popitem(last=False)
            self.stats.bytes_cached -= old.nbytes
            self.stats.evictions += 1
        return False
