"""The multi-viewer serving layer: shared world, session manager, runner.

One :class:`ServiceCampaign` multiplexes many viewer sessions over a
*shared* pool of back-end PEs and one DPSS site. Each admitted session
gets its own :class:`~repro.viewer.sim.SimViewer` (on its own host,
behind its profile's WAN) and its own
:class:`~repro.backend.sim.SimBackEnd` bound to the shared PE hosts,
so cross-session contention for PE NICs, CPUs, the WAN, and the DPSS
disk pools resolves in the fluid model exactly where the paper's
single-session contention did. Sharing happens at two layers:

- the **DPSS block cache** (``dpss_cache_bytes``) serves one session's
  blocks to the next without a disk read;
- the **render cache** (:class:`~repro.service.cache.RenderCache`)
  serves one session's finished slab textures to the next, skipping
  the DPSS read *and* the render leg.

A single-viewer workload with the cache disabled reproduces the
single-session :func:`~repro.core.campaign.run_campaign` event stream
byte-for-byte (modulo the ``s0/`` session prefix and ``viewer0`` host
name) -- the serving layer is pure bookkeeping until there is actual
multiplexing to do.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Generator, List, Optional, Tuple

import numpy as np

from repro.backend.sim import SimBackEnd
from repro.config import (
    BackendConfig,
    NetworkConfig,
    SiteSpec,
    StripeConfig,
    TileConfig,
    TopologyConfig,
    warn_deprecated_kwarg,
)
from repro.core.campaign import CampaignConfig
from repro.core.platforms import (
    DPSS_DISK_RATE,
    DPSS_DISKS_PER_SERVER,
    DPSS_N_SERVERS,
    DPSS_SERVER_NIC,
    Wans,
)
from repro.core.report import CampaignResult
from repro.dpss.blocks import DpssDataset
from repro.dpss.master import DpssMaster
from repro.dpss.server import DpssServer
from repro.faults.injector import FaultInjector
from repro.faults.policy import RequestPolicy
from repro.netlogger.analysis import EventLog
from repro.netlogger.daemon import NetLogDaemon
from repro.netlogger.events import Tags
from repro.netlogger.logger import NetLogger
from repro.netsim.host import Host
from repro.netsim.link import Link
from repro.netsim.tcp import TcpParams
from repro.netsim.topology import Network
from repro.service.admission import (
    AdmissionPolicy,
    QueueFull,
    SlotQueue,
    TokenBucket,
)
from repro.service.cache import CacheConfig, CacheStats, RenderCache
from repro.service.metrics import ServiceMetrics, SessionRecord
from repro.service.workload import ViewerProfile, WorkloadSpec
from repro.simcore.process import Process
from repro.util.rng import spawn_rngs
from repro.util.units import KIB, MB, bytes_per_sec_to_mbps, mbps
from repro.viewer.sim import SimViewer

#: seed stride between sessions: distinct, collision-free streams while
#: session 0 keeps the base seed (the byte-reproduction anchor)
_SEED_STRIDE = 1000003


@dataclass(frozen=True)
class ServiceCampaign:
    """A multi-viewer serving campaign over one shared back-end pool.

    ``base`` supplies everything a single session needs (platform, PE
    count, WAN, dataset shape, frames, faults, policy); the service
    fields describe the population of viewers and the shared layers.
    """

    name: str
    base: CampaignConfig
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    cache: CacheConfig = field(default_factory=CacheConfig)
    #: deprecated flat knob -- pass ``topology`` with a site-level
    #: ``dpss_cache_bytes`` instead (kept as a shim for one release)
    dpss_cache_bytes: float = 0.0
    #: overrides ``base.seed`` for the whole service run when set
    seed: Optional[int] = None
    #: the serving fabric; ``None`` means the historical single local
    #: site. A full-world ServiceCampaign stays single-site -- the
    #: lightweight multi-site model is
    #: :class:`repro.service.shard.ShardCampaign`.
    topology: Optional[TopologyConfig] = None

    def __post_init__(self):
        if self.dpss_cache_bytes != 0.0:
            if self.topology is not None:
                raise ValueError(
                    "pass dpss_cache_bytes through the topology's "
                    "SiteSpec, not both"
                )
            warn_deprecated_kwarg(
                "ServiceCampaign",
                "dpss_cache_bytes",
                "topology=TopologyConfig.single_site(dpss_cache_bytes=...)",
            )
        if self.topology is not None and len(self.topology.sites) != 1:
            raise ValueError(
                f"ServiceCampaign runs one full-world site; got "
                f"{len(self.topology.sites)} sites -- use "
                f"repro.service.shard.ShardCampaign for multi-site runs"
            )

    @property
    def site(self) -> SiteSpec:
        """The effective (single) site spec this campaign serves from."""
        if self.topology is not None:
            return self.topology.sites[0]
        return SiteSpec(name="local", dpss_cache_bytes=self.dpss_cache_bytes)

    @property
    def effective_seed(self) -> int:
        """The seed the whole service run derives from."""
        return self.seed if self.seed is not None else self.base.seed

    def with_changes(self, **changes: Any) -> "ServiceCampaign":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    @classmethod
    def sc99_multiviewer(
        cls, *, n_viewers: int = 6, n_timesteps: int = 4, **kw: Any
    ) -> "ServiceCampaign":
        """The SC99 floor, multiplexed: one LBL-booth back-end pool
        serving show-floor, SciNet, and ESnet viewers at once."""
        base = CampaignConfig.sc99_showfloor(n_timesteps=n_timesteps)
        profiles = (
            ViewerProfile(name="showfloor", wan=None, weight=2.0),
            ViewerProfile(name="scinet", wan=Wans.SCINET99),
            ViewerProfile(name="esnet", wan=Wans.ESNET),
        )
        return cls(
            name="sc99-multiviewer",
            base=base,
            workload=WorkloadSpec(
                mode="open",
                n_viewers=n_viewers,
                arrival_rate=0.05,
                profiles=profiles,
            ),
            admission=AdmissionPolicy(max_sessions=4, queue_depth=8),
            cache=CacheConfig(capacity_bytes=256 * MB),
            **kw,
        )


class SessionManager:
    """Admits, queues, rejects, and runs viewer sessions.

    Construction builds the shared world (DPSS site, WAN, PE pool,
    dataset, fault injector); :meth:`run` returns the process that
    completes when every offered session has been resolved.
    """

    def __init__(self, config: ServiceCampaign):
        self.config = config
        self.net = Network()
        self.daemon = NetLogDaemon()
        self.records: List[SessionRecord] = []
        self.backends: List[SimBackEnd] = []
        self.viewers: List[SimViewer] = []
        self._next_sid = 0
        policy = config.admission
        self._slots = SlotQueue(
            self.net.env,
            max_slots=policy.max_sessions,
            queue_depth=policy.queue_depth,
        )
        self._bucket: Optional[TokenBucket] = (
            TokenBucket(policy.token_rate, policy.token_burst)
            if policy.token_rate > 0
            else None
        )
        self.cache: Optional[RenderCache] = (
            RenderCache(
                self.net.env,
                config.cache,
                daemon=self.daemon,
            )
            if config.cache.enabled and config.cache.capacity_bytes > 0
            else None
        )
        self.logger = NetLogger(
            "service",
            "session-manager",
            clock=lambda: self.net.env.now,
            daemon=self.daemon,
        )
        # Stream 0 drives open-loop arrivals; streams [1, 1+n_viewers)
        # drive per-viewer think times in closed-loop mode.
        self._rngs = spawn_rngs(
            config.effective_seed + 7, 1 + config.workload.n_viewers
        )
        self._build_world()

    # -- shared world ------------------------------------------------
    def _build_world(self) -> None:
        """The DPSS site, WAN, and PE pool every session shares.

        Mirrors :func:`repro.core.campaign.build_session` except that
        the DPSS block caches may be warm (``dpss_cache_bytes``) and
        the viewer side is attached per session at admission time.
        """
        config = self.config
        base = config.base
        net = self.net
        self.dpss_lan = net.add_link(
            Link("dpss-lan", rate=mbps(2000.0), latency=0.0001)
        )
        master_host = net.add_host(
            Host("dpss-master", nic_rate=mbps(100.0))
        )
        self.master = DpssMaster(master_host)
        stripe = (
            base.stripe
            if base.stripe is not None and base.stripe.enabled
            else None
        )
        self._stripe = stripe
        n_servers = (
            max(DPSS_N_SERVERS, stripe.width)
            if stripe is not None
            else DPSS_N_SERVERS
        )
        self._n_servers = n_servers
        for i in range(n_servers):
            h = net.add_host(Host(f"dpss{i}", nic_rate=DPSS_SERVER_NIC))
            server = DpssServer(
                h,
                n_disks=DPSS_DISKS_PER_SERVER,
                disk_rate=DPSS_DISK_RATE,
                cache_bytes=config.site.dpss_cache_bytes,
            )
            server.attach(net)
            self.master.add_server(server)

        self.wan = net.add_link(
            Link(
                base.wan.name,
                rate=base.wan.rate,
                latency=base.wan.latency,
                efficiency=base.wan.efficiency,
                background_rate=base.wan.background_rate,
                monitor=True,
            )
        )

        plat = base.platform
        if plat.cluster:
            self.pe_hosts = [
                net.add_host(
                    Host(
                        f"pe{i}",
                        nic_rate=plat.nic_rate,
                        n_cpus=plat.n_cpus,
                        shared_cpu_io=plat.shared_cpu_io,
                    )
                )
                for i in range(base.n_pes)
            ]
        else:
            smp = net.add_host(
                Host(
                    plat.name,
                    nic_rate=plat.nic_rate,
                    n_cpus=plat.n_cpus,
                    shared_cpu_io=plat.shared_cpu_io,
                )
            )
            self.pe_hosts = [smp] * base.n_pes
        self._pe_host_names = sorted({h.name for h in self.pe_hosts})
        for host in self._pe_host_names:
            net.add_route("dpss-master", host, [self.dpss_lan, self.wan])
            for i in range(n_servers):
                net.add_route(
                    f"dpss{i}", host, [self.dpss_lan, self.wan]
                )

        self._active_faults = base.faults if base.faults else None
        self.meta = base.meta
        self.master.register_dataset(
            DpssDataset(
                name=self.meta.name,
                size=float(self.meta.total_bytes),
                block_size=64 * KIB,
            ),
            # Parity is the failover when striped; replicas otherwise.
            replicas=(
                2
                if self._active_faults is not None and stripe is None
                else 1
            ),
            stripe=stripe,
        )
        self.health = None
        if stripe is not None:
            from repro.dpss.health import HealthTracker

            self.health = HealthTracker(
                now=lambda: net.env.now,
                half_life=stripe.health_half_life,
                logger=NetLogger(
                    "dpss-client",
                    "health",
                    clock=lambda: net.env.now,
                    daemon=self.daemon,
                ),
            )
        self._policy: Optional[RequestPolicy] = base.policy
        if self._policy is None and self._active_faults is not None:
            self._policy = RequestPolicy()
        if self._active_faults is not None:
            injector = FaultInjector(
                net,
                self.master,
                self._active_faults,
                daemon=self.daemon,
                link_aliases={"wan": base.wan.name},
            )
            # Only the striped path feeds health; the observer hook is
            # left unattached otherwise so unstriped runs keep their
            # historical ULM stream byte-for-byte.
            if self.health is not None:
                injector.observers.append(self.health.observe_fault)
            injector.start()
            net.fault_injector = injector

    # -- per-session wiring ------------------------------------------
    def _session_seed(self, sid: int) -> int:
        return self.config.effective_seed + _SEED_STRIDE * sid

    def _session_frames(self, profile: ViewerProfile) -> int:
        return (
            profile.frames
            if profile.frames is not None
            else self.config.base.n_timesteps
        )

    def _session_bytes(self, profile: ViewerProfile) -> float:
        """Estimated DPSS->back end bytes (the admission token cost)."""
        return self.meta.bytes_per_timestep * self._session_frames(profile)

    def _build_session(
        self, sid: int, profile: ViewerProfile
    ) -> Tuple[SimViewer, SimBackEnd]:
        """Attach one viewer host + WAN and bind a back end to the pool."""
        config = self.config
        base = config.base
        net = self.net
        viewer_name = f"viewer{sid}"
        net.add_host(Host(viewer_name, nic_rate=mbps(100.0)))
        wspec = profile.wan
        if wspec is None:
            vlink = net.add_link(
                Link(
                    f"{viewer_name}-lan",
                    rate=mbps(1000.0),
                    latency=0.0001,
                )
            )
        else:
            vlink = net.add_link(
                Link(
                    f"{viewer_name}-{wspec.name}",
                    rate=wspec.rate,
                    latency=wspec.latency,
                    efficiency=wspec.efficiency,
                    background_rate=wspec.background_rate,
                )
            )
        for host in self._pe_host_names:
            net.add_route(host, viewer_name, [vlink])
        net.add_route(
            "dpss-master", viewer_name, [self.dpss_lan, self.wan]
        )
        viewer = SimViewer(
            net,
            viewer_name,
            daemon=self.daemon,
            config=NetworkConfig(tcp=TcpParams(max_window=1024 * KIB)),
        )
        plat = base.platform
        reserved = config.admission.fair_share_rate * profile.weight
        tiles = base.tiles if base.tiles is not None else TileConfig()
        if profile.frustum is not None:
            tiles = tiles.with_changes(frustum=profile.frustum)
        backend = SimBackEnd(
            net,
            self.pe_hosts,
            self.master,
            self.meta.name,
            viewer,
            self.meta,
            daemon=self.daemon,
            render_cost=plat.render_cost_model(),
            config=BackendConfig(
                n_timesteps=self._session_frames(profile),
                overlapped=base.overlapped,
                overlap_depth=base.overlap_depth,
                mpi_only_overlap=base.mpi_only_overlap,
                overlap_render_share=(
                    plat.overlap_render_share if base.overlapped else 1.0
                ),
                overlap_ingest_factor=(
                    plat.overlap_ingest_factor if base.overlapped else 1.0
                ),
                load_jitter_cv=(
                    plat.overlap_jitter_cv if base.overlapped else 0.0
                ),
                seed=self._session_seed(sid),
                network=NetworkConfig(
                    tcp=TcpParams(max_window=base.wan.tcp_window),
                    policy=self._policy,
                    reserved_rate=reserved,
                    stripe=(
                        self._stripe
                        if self._stripe is not None
                        else StripeConfig()
                    ),
                ),
                tiles=tiles,
            ),
            render_cache=self.cache,
            session=f"s{sid}",
            health=self.health,
        )
        self.viewers.append(viewer)
        self.backends.append(backend)
        return viewer, backend

    # -- admission + lifecycle ---------------------------------------
    def _reject(self, record: SessionRecord, reason: str) -> None:
        record.rejected = True
        record.reject_reason = reason
        self.logger.log(
            Tags.SVC_REJECT, session=record.session, reason=reason
        )

    def _release(self) -> None:
        # A queued arrival inherits the slot directly (O(1) FIFO
        # handoff), so the active count is untouched while anyone is
        # waiting.
        self._slots.release()

    def _session(
        self, sid: int, profile: ViewerProfile
    ) -> Generator[Any, Any, None]:
        env = self.net.env
        record = SessionRecord(
            session=sid,
            profile=profile.name,
            arrival=env.now,
            weight=profile.weight,
        )
        self.records.append(record)
        self.logger.log(
            Tags.SVC_ARRIVAL, session=sid, profile=profile.name
        )
        policy = self.config.admission
        cost = self._session_bytes(profile)
        if self._bucket is not None and cost > self._bucket.burst:
            # This session's aggregate-bandwidth bill can never be
            # covered: reject immediately rather than queueing forever.
            self._reject(record, "bandwidth")
            return
        try:
            slot = self._slots.acquire()
        except QueueFull:
            self._reject(record, "capacity")
            return
        if slot is not None:
            self.logger.log(
                Tags.SVC_QUEUE, session=sid, depth=self._slots.depth
            )
            yield slot
        if self._bucket is not None:
            wait = self._bucket.reserve(cost, env.now)
            assert wait is not None  # cost <= burst checked above
            if wait > 0:
                yield env.timeout(wait)
        record.admitted = env.now
        self.logger.log(
            Tags.SVC_ADMIT, session=sid, wait=env.now - record.arrival
        )
        viewer, backend = self._build_session(sid, profile)
        record.started = env.now
        self.logger.log(Tags.SVC_START, session=sid)
        yield backend.run()
        record.ended = env.now
        record.frames = viewer.complete_frames(backend.n_render_pes)
        if viewer.frame_complete_times:
            record.first_frame = min(
                viewer.frame_complete_times.values()
            )
        self.logger.log(
            Tags.SVC_END, session=sid, frames=record.frames
        )
        self._release()

    def _closed_viewer(
        self, viewer_index: int, rng: np.random.Generator
    ) -> Generator[Any, Any, None]:
        """One closed-loop viewer: request, watch, think, repeat."""
        env = self.net.env
        workload = self.config.workload
        profile = workload.profile_of(viewer_index)
        for request in range(workload.requests_per_viewer):
            sid = self._next_sid
            self._next_sid += 1
            yield env.process(self._session(sid, profile))
            if (
                request + 1 < workload.requests_per_viewer
                and workload.think_time > 0
            ):
                yield env.timeout(
                    float(rng.exponential(workload.think_time))
                )

    def _run(self) -> Generator[Any, Any, None]:
        workload = self.config.workload
        env = self.net.env
        procs: List[Process] = []
        if workload.mode == "closed":
            procs = [
                env.process(self._closed_viewer(i, self._rngs[1 + i]))
                for i in range(workload.n_viewers)
            ]
            self._next_sid = 0
        else:
            arrivals = workload.arrivals(self._rngs[0])
            for t, profile in arrivals:
                delay = t - env.now
                if delay > 0:
                    yield env.timeout(delay)
                sid = self._next_sid
                self._next_sid += 1
                procs.append(
                    env.process(self._session(sid, profile))
                )
        if procs:
            yield env.all_of(procs)

    def run(self) -> Process:
        """The manager process: completes when the workload is drained."""
        return self.net.env.process(self._run())

    @property
    def cache_stats(self) -> CacheStats:
        """Render-cache counters (all-zero when the cache is off)."""
        return self.cache.stats if self.cache is not None else CacheStats()


@dataclass
class ServiceResult(CampaignResult):
    """A :class:`~repro.core.report.CampaignResult` plus service-level
    aggregates: the base fields reduce the merged event stream across
    every session, the extras carry the serving layer's own metrics."""

    service: Optional[ServiceMetrics] = None
    sessions: List[SessionRecord] = field(default_factory=list)
    cache_stats: Optional[CacheStats] = None
    campaign: Optional[ServiceCampaign] = None

    def summary(self) -> str:
        """Human-readable service block over the campaign aggregates."""
        svc = self.campaign
        base = svc.base if svc is not None else self.config
        lines = [
            f"service campaign {svc.name if svc else self.config.name}: "
            f"{base.n_pes} shared PEs on {base.platform.name}, "
            f"{base.wan.name} WAN",
        ]
        if self.service is not None:
            lines.append(self.service.summary())
        if self.cache_stats is not None:
            stats = self.cache_stats
            lines.append(
                f"  render cache      : {stats.hits} hits / "
                f"{stats.lookups} lookups, {stats.evictions} evictions, "
                f"{stats.bytes_cached / 1e6:.1f} MB resident"
            )
        if self.tiles_full or self.tiles_ref:
            total = self.tiles_full + self.tiles_ref
            ref_ratio = self.tiles_ref / total if total else 0.0
            lines.append(
                f"  tile delta        : {self.tiles_full} full /"
                f" {self.tiles_ref} ref tiles ({ref_ratio:.0%} referenced,"
                f" {self.tile_bytes_saved / 1e6:.1f} MB saved)"
            )
        lines.append(
            f"  load (L)          : {self.mean_load:.2f} s/frame"
            f" +- {self.std_load:.2f}"
        )
        lines.append(
            f"  render (R)        : {self.mean_render:.2f} s/frame"
            f" +- {self.std_render:.2f}"
        )
        return "\n".join(lines)


def _reduce(
    config: ServiceCampaign,
    manager: SessionManager,
    total_time: float,
) -> ServiceResult:
    """Aggregate one finished service run into a :class:`ServiceResult`."""
    log = EventLog(manager.daemon.events)
    loads = np.array([s.duration for s in log.load_spans()] or [0.0])
    renders = np.array(
        [s.duration for s in log.render_spans()] or [0.0]
    )
    per_frame_load = log.per_frame_load_times()
    per_frame_render = log.per_frame_render_times()
    bytes_per_frame = manager.meta.bytes_per_timestep
    load_rates = [
        bytes_per_frame / t for t in per_frame_load.values() if t > 0
    ]
    load_mbps = (
        float(np.mean([bytes_per_sec_to_mbps(r) for r in load_rates]))
        if load_rates
        else 0.0
    )
    inject_ts = [e.ts for e in log.events if e.event == "FAULT_INJECT"]
    fault_ts = [
        e.ts
        for e in log.events
        if e.event.startswith(("FAULT_", "RETRY_"))
    ]
    recovery = max(fault_ts) - min(inject_ts) if inject_ts else 0.0
    metrics = ServiceMetrics.from_records(
        manager.records,
        total_time=total_time,
        cache_hit_ratio=manager.cache_stats.hit_ratio,
        tiles_full=sum(b.timing.tiles_full for b in manager.backends),
        tiles_ref=sum(b.timing.tiles_ref for b in manager.backends),
        tile_bytes_saved=sum(
            b.timing.tile_bytes_saved for b in manager.backends
        ),
    )
    degraded: set = set()
    for backend in manager.backends:
        degraded.update(
            (backend.session, frame)
            for frame in backend.timing.degraded_frames
        )
    return ServiceResult(
        config=config.base,
        total_time=total_time,
        n_frames=metrics.frames_delivered,
        mean_load=float(loads.mean()),
        std_load=float(loads.std()),
        mean_render=float(renders.mean()),
        std_render=float(renders.std()),
        load_throughput_mbps=load_mbps,
        wan_capacity_mbps=bytes_per_sec_to_mbps(
            config.base.wan.usable_capacity
        ),
        backend_to_viewer_bytes=sum(
            b.timing.bytes_sent_to_viewer for b in manager.backends
        ),
        dpss_to_backend_bytes=sum(
            b.timing.bytes_loaded for b in manager.backends
        ),
        viewer_frames_complete=metrics.frames_delivered,
        event_log=log,
        per_frame_load=per_frame_load,
        per_frame_render=per_frame_render,
        wan_utilization_series=(
            manager.wan.resource.utilization_timeseries()
        ),
        degraded_frames=len(degraded),
        retries=sum(b.timing.retries for b in manager.backends),
        hedges=sum(b.timing.hedges for b in manager.backends),
        recovery_seconds=recovery,
        tiles_full=sum(b.timing.tiles_full for b in manager.backends),
        tiles_ref=sum(b.timing.tiles_ref for b in manager.backends),
        tile_bytes_saved=sum(
            b.timing.tile_bytes_saved for b in manager.backends
        ),
        hedges_abandoned=sum(
            b.timing.hedges_abandoned for b in manager.backends
        ),
        reconstructions=sum(
            b.timing.reconstructions for b in manager.backends
        ),
        parity_bytes=sum(
            b.timing.parity_bytes for b in manager.backends
        ),
        stripe_cancels=sum(
            b.timing.stripe_cancels for b in manager.backends
        ),
        read_p99=(
            float(
                np.percentile(
                    [
                        s
                        for b in manager.backends
                        for s in b.timing.read_seconds
                    ],
                    99,
                )
            )
            if any(b.timing.read_seconds for b in manager.backends)
            else 0.0
        ),
        service=metrics,
        sessions=list(manager.records),
        cache_stats=manager.cache_stats,
        campaign=config,
    )


def run_service_campaign(
    config: ServiceCampaign,
    *,
    sanitize: bool = False,
    ulm_path: Optional[str] = None,
    alloc_stats: bool = False,
) -> ServiceResult:
    """Build and run a multi-viewer service campaign to completion.

    Mirrors :func:`repro.core.campaign.run_campaign`: ``sanitize``
    attaches the concurrency sanitizer as a pure observer,
    ``alloc_stats`` adds sampled ``ALLOC_*`` allocator counters (also
    a pure observer), and ``ulm_path`` writes the merged, time-sorted
    ULM event stream.
    """
    manager = SessionManager(config)
    sanitizer = None
    if sanitize:
        from repro.analysis import attach_sanitizer

        sanitizer = attach_sanitizer(
            manager.net.env,
            logger=NetLogger(
                "sanitizer",
                "sanitizer",
                clock=lambda: manager.net.env.now,
                daemon=manager.daemon,
            ),
        )
    finish_alloc = None
    if alloc_stats:
        from repro.core.campaign import attach_alloc_logger

        finish_alloc = attach_alloc_logger(manager.net, manager.daemon)
    done = manager.run()
    manager.net.run(until=done)
    total_time = manager.net.env.now
    if finish_alloc is not None:
        finish_alloc()
    if ulm_path is not None:
        manager.daemon.write_ulm(ulm_path)
    result = _reduce(config, manager, total_time)
    if sanitizer is not None:
        result.sanitizer_findings = list(sanitizer.report().findings)
    return result
