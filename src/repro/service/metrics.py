"""Service-level metrics: per-session records and their aggregation.

The serving layer measures what a capacity planner would ask of a
multi-user Visapult deployment (the ROADMAP's production-scale
service): admission latency, time-to-first-frame, sustained frame
rate per session, cache effectiveness, and tail percentiles across
sessions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro.util.units import fmt_seconds

#: version stamp every JSON result payload carries; bump on any
#: backwards-incompatible change to the emitted structure
RESULT_SCHEMA_VERSION = 1


def result_payload(kind: str, metrics: Any, **sections: Any) -> Dict[str, Any]:
    """The one versioned JSON envelope every runner emits.

    ``campaign --json``, ``serve-sim --json`` and the shard bench all
    route through here, so downstream tooling can dispatch on
    ``schema_version`` + ``kind`` instead of sniffing key shapes.
    Extra keyword sections land at the top level; objects exposing
    ``to_dict`` are serialised through it, ``None`` sections are
    dropped.
    """
    payload: Dict[str, Any] = {
        "schema_version": RESULT_SCHEMA_VERSION,
        "kind": kind,
        "metrics": (
            metrics.to_dict() if hasattr(metrics, "to_dict") else dict(metrics)
        ),
    }
    for key, value in sections.items():
        if value is None:
            continue
        payload[key] = value.to_dict() if hasattr(value, "to_dict") else value
    return payload


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile; 0.0 for an empty sample."""
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=float), q))


@dataclass
class SessionRecord:
    """One viewer session's lifecycle timestamps and outcome."""

    session: int
    profile: str
    arrival: float
    weight: float = 1.0
    admitted: Optional[float] = None
    started: Optional[float] = None
    ended: Optional[float] = None
    #: sim time the first fully-assembled frame landed in the scene
    first_frame: Optional[float] = None
    #: frames fully delivered to this session's viewer
    frames: int = 0
    rejected: bool = False
    reject_reason: str = ""
    #: multi-site shard fields; empty for single-site campaigns
    home: str = ""
    served: str = ""
    verdict: str = ""

    @property
    def admission_latency(self) -> Optional[float]:
        """Arrival to admission; ``None`` for rejected sessions."""
        if self.admitted is None:
            return None
        return self.admitted - self.arrival

    @property
    def ttff(self) -> Optional[float]:
        """Arrival to first complete frame (time-to-first-frame)."""
        if self.first_frame is None:
            return None
        return self.first_frame - self.arrival

    @property
    def frame_rate(self) -> float:
        """Sustained frames/s over the session's active span."""
        if self.started is None or self.ended is None:
            return 0.0
        active = self.ended - self.started
        return self.frames / active if active > 0 else 0.0


@dataclass
class ServiceMetrics:
    """Aggregates over every offered session of a service campaign."""

    offered: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    queued: int = 0
    total_time: float = 0.0
    frames_delivered: int = 0
    #: frames_delivered over the campaign makespan
    aggregate_frame_rate: float = 0.0
    #: completed sessions over the campaign makespan
    sessions_per_second: float = 0.0
    cache_hit_ratio: float = 0.0
    #: tile mode: full tiles / delta references shipped across every
    #: session (both zero for whole-slab campaigns)
    tiles_full: int = 0
    tiles_ref: int = 0
    #: tile mode: texture bytes delta references kept off the wire
    tile_bytes_saved: float = 0.0
    mean_session_frame_rate: float = 0.0
    admission_p50: float = 0.0
    admission_p95: float = 0.0
    admission_p99: float = 0.0
    ttff_p50: float = 0.0
    ttff_p95: float = 0.0
    ttff_p99: float = 0.0

    @classmethod
    def from_records(
        cls,
        records: Sequence[SessionRecord],
        *,
        total_time: float,
        cache_hit_ratio: float = 0.0,
        tiles_full: int = 0,
        tiles_ref: int = 0,
        tile_bytes_saved: float = 0.0,
    ) -> "ServiceMetrics":
        """Reduce session records into service-level aggregates."""
        admitted = [r for r in records if r.admitted is not None]
        completed = [r for r in admitted if r.ended is not None]
        lat = [
            r.admission_latency for r in admitted
            if r.admission_latency is not None
        ]
        ttff = [r.ttff for r in records if r.ttff is not None]
        frames = sum(r.frames for r in records)
        rates = [r.frame_rate for r in completed]
        return cls(
            offered=len(records),
            admitted=len(admitted),
            rejected=sum(1 for r in records if r.rejected),
            completed=len(completed),
            queued=sum(
                1 for r in admitted
                if (r.admission_latency or 0.0) > 0.0
            ),
            total_time=total_time,
            frames_delivered=frames,
            aggregate_frame_rate=(
                frames / total_time if total_time > 0 else 0.0
            ),
            sessions_per_second=(
                len(completed) / total_time if total_time > 0 else 0.0
            ),
            cache_hit_ratio=cache_hit_ratio,
            tiles_full=tiles_full,
            tiles_ref=tiles_ref,
            tile_bytes_saved=tile_bytes_saved,
            mean_session_frame_rate=(
                float(np.mean(rates)) if rates else 0.0
            ),
            admission_p50=percentile(lat, 50),
            admission_p95=percentile(lat, 95),
            admission_p99=percentile(lat, 99),
            ttff_p50=percentile(ttff, 50),
            ttff_p95=percentile(ttff, 95),
            ttff_p99=percentile(ttff, 99),
        )

    def to_dict(self) -> Dict[str, float]:
        """Flat JSON-ready form (the CI benchmark artifact)."""
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "total_time": self.total_time,
            "frames_delivered": self.frames_delivered,
            "aggregate_frame_rate": self.aggregate_frame_rate,
            "sessions_per_second": self.sessions_per_second,
            "cache_hit_ratio": self.cache_hit_ratio,
            "tiles_full": self.tiles_full,
            "tiles_ref": self.tiles_ref,
            "tile_bytes_saved": self.tile_bytes_saved,
            "mean_session_frame_rate": self.mean_session_frame_rate,
            "admission_p50": self.admission_p50,
            "admission_p95": self.admission_p95,
            "admission_p99": self.admission_p99,
            "ttff_p50": self.ttff_p50,
            "ttff_p95": self.ttff_p95,
            "ttff_p99": self.ttff_p99,
        }

    def summary(self) -> str:
        """A human-readable service block."""
        return "\n".join([
            f"  sessions          : {self.completed} completed / "
            f"{self.admitted} admitted / {self.rejected} rejected "
            f"of {self.offered} offered",
            f"  admission latency : p50 {fmt_seconds(self.admission_p50)}"
            f"  p95 {fmt_seconds(self.admission_p95)}"
            f"  p99 {fmt_seconds(self.admission_p99)}",
            f"  time-to-frame     : p50 {fmt_seconds(self.ttff_p50)}"
            f"  p95 {fmt_seconds(self.ttff_p95)}"
            f"  p99 {fmt_seconds(self.ttff_p99)}",
            f"  frame delivery    : {self.frames_delivered} frames, "
            f"{self.aggregate_frame_rate:.3f} frames/s aggregate, "
            f"{self.mean_session_frame_rate:.3f} frames/s/session",
            f"  cache hit ratio   : {self.cache_hit_ratio:.0%}",
        ])


@dataclass
class SiteMetrics:
    """One shard site's admission and serving tallies."""

    name: str
    #: sessions whose home is this site
    offered: int = 0
    #: sessions this site's back ends actually served
    served: int = 0
    #: homed here, but served at a remote site
    spilled_out: int = 0
    #: homed elsewhere, served here
    spilled_in: int = 0
    queued: int = 0
    rejected: int = 0
    completed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of this site's lookups served from the edge cache."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-ready form."""
        return {
            "name": self.name,
            "offered": self.offered,
            "served": self.served,
            "spilled_out": self.spilled_out,
            "spilled_in": self.spilled_in,
            "queued": self.queued,
            "rejected": self.rejected,
            "completed": self.completed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_ratio": self.cache_hit_ratio,
        }


@dataclass
class ShardMetrics:
    """Service aggregates plus the multi-site breakdown."""

    service: ServiceMetrics
    #: campaign-wide verdict counts, keyed by
    #: :class:`~repro.service.admission.AdmissionVerdict` values
    verdicts: Dict[str, int] = field(default_factory=dict)
    sites: Dict[str, SiteMetrics] = field(default_factory=dict)

    @classmethod
    def from_records(
        cls,
        records: Sequence[SessionRecord],
        site_names: Sequence[str],
        *,
        total_time: float,
        site_cache_stats: Optional[Dict[str, Any]] = None,
    ) -> "ShardMetrics":
        """Reduce shard session records to service + per-site tallies.

        ``site_cache_stats`` maps site name to that edge cache's
        :class:`~repro.service.cache.CacheStats`.
        """
        sites = {name: SiteMetrics(name=name) for name in site_names}
        verdicts: Dict[str, int] = {}
        hits = misses = 0
        for record in records:
            if record.verdict:
                verdicts[record.verdict] = verdicts.get(record.verdict, 0) + 1
            home = sites.get(record.home)
            if home is not None:
                home.offered += 1
                if record.rejected:
                    home.rejected += 1
                if record.verdict == "queued":
                    home.queued += 1
            served = sites.get(record.served)
            if served is not None:
                served.served += 1
                if record.ended is not None:
                    served.completed += 1
            if record.served and record.home and record.served != record.home:
                if home is not None:
                    home.spilled_out += 1
                if served is not None:
                    served.spilled_in += 1
        if site_cache_stats:
            for name, stats in site_cache_stats.items():
                site = sites.get(name)
                if site is not None:
                    site.cache_hits = stats.hits
                    site.cache_misses = stats.misses
                hits += stats.hits
                misses += stats.misses
        service = ServiceMetrics.from_records(
            records,
            total_time=total_time,
            cache_hit_ratio=hits / (hits + misses) if hits + misses else 0.0,
        )
        return cls(service=service, verdicts=verdicts, sites=sites)

    def to_dict(self) -> Dict[str, Any]:
        """Nested JSON-ready form (service + verdicts + sites)."""
        return {
            "service": self.service.to_dict(),
            "verdicts": dict(self.verdicts),
            "sites": {
                name: site.to_dict() for name, site in self.sites.items()
            },
        }

    def summary(self) -> str:
        """Human-readable shard block: service lines + a site table."""
        lines = [self.service.summary()]
        verdicts = ", ".join(
            f"{k} {v}" for k, v in sorted(self.verdicts.items())
        )
        if verdicts:
            lines.append(f"  verdicts          : {verdicts}")
        for name in sorted(self.sites):
            site = self.sites[name]
            lines.append(
                f"  site {name:<12} : {site.served} served "
                f"({site.spilled_in} in / {site.spilled_out} out), "
                f"{site.rejected} rejected, "
                f"cache {site.cache_hit_ratio:.0%}"
            )
        return "\n".join(lines)


#: re-exported for the package facade
__all__ = [
    "RESULT_SCHEMA_VERSION",
    "SessionRecord",
    "ServiceMetrics",
    "ShardMetrics",
    "SiteMetrics",
    "percentile",
    "result_payload",
]
