"""Sharded serving: per-site admission over a multi-region fabric.

Where :class:`~repro.service.manager.SessionManager` runs the *full*
Visapult world (DPSS block servers, per-PE pipelines, TCP models) for
a handful of viewers, the shard layer answers the capacity question at
the other end of the scale -- *can this deployment admit ten thousand
sessions, and where do they land?* Each session is modelled as one
fluid transfer over the site fabric (DPSS read + edge delivery +
inter-site WAN leg when spilled), so the whole campaign is bookkeeping
plus the fluid allocator:

- **placement**: every arrival is homed at a site (its profile's
  ``region``, or round-robin) and receives an Icarus-style
  :class:`~repro.service.admission.AdmissionVerdict` -- served at home
  (``local``), at the least-loaded remote site (``spill``), parked in
  the home FIFO (``queued``), or ``rejected``.
- **flow classes**: with
  :attr:`~repro.config.FlowClassConfig.enabled`, same-profile sessions
  on the same (serving, home, warmth) path collapse into one
  aggregate flow (:class:`~repro.simcore.flowclass.FlowClassPool`),
  so allocator cost scales with the number of *classes*, not
  sessions; ``enabled=False`` is the bitwise-pinned per-session
  oracle.
- **edge caches**: a warm :class:`~repro.service.cache.EdgeCacheModel`
  hit at the serving site drops the DPSS leg from the session's flow.

Sessions are callback-driven -- one driver process walks the arrival
schedule and completions ride the fluid pool's events -- so a 10k
session campaign runs without 10k simulation processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.config import FlowClassConfig, TopologyConfig, named_topology
from repro.netlogger.daemon import NetLogDaemon
from repro.netlogger.events import Tags
from repro.netlogger.logger import NetLogger
from repro.netsim.sites import SiteFabric
from repro.service.admission import AdmissionVerdict, SlotQueue
from repro.service.cache import CacheStats, EdgeCacheModel
from repro.service.metrics import SessionRecord, ShardMetrics, result_payload
from repro.service.workload import ViewerProfile, WorkloadSpec
from repro.simcore.env import Environment
from repro.simcore.events import Event
from repro.simcore.flowclass import FlowClass, FlowClassPool
from repro.simcore.process import Process
from repro.util.rng import spawn_rngs
from repro.util.units import MB
from repro.util.validation import check_positive

__all__ = [
    "ShardCampaign",
    "ShardResult",
    "ShardedSessionManager",
    "run_shard_campaign",
]


@dataclass(frozen=True)
class ShardCampaign:
    """A multi-site serving campaign at fluid-flow granularity."""

    name: str
    topology: TopologyConfig = field(default_factory=TopologyConfig)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    flow_classes: FlowClassConfig = field(default_factory=FlowClassConfig)
    #: bytes one delivered frame moves over the session's path
    frame_bytes: float = 8 * MB
    #: frames per session unless the viewer profile overrides
    frames: int = 4
    seed: int = 0

    def __post_init__(self):
        check_positive("frame_bytes", self.frame_bytes)
        if self.frames < 1:
            raise ValueError(f"frames must be >= 1, got {self.frames}")
        if self.workload.mode != "open":
            raise ValueError(
                "ShardCampaign drives open-loop workloads only"
            )
        known = set(self.topology.site_names)
        for profile in self.workload.profiles:
            if profile.region is not None and profile.region not in known:
                raise ValueError(
                    f"profile {profile.name!r} is homed at unknown site "
                    f"{profile.region!r}; topology has "
                    f"{sorted(known)}"
                )

    @property
    def effective_seed(self) -> int:
        """The seed the whole shard run derives from."""
        return self.seed

    def with_changes(self, **changes: Any) -> "ShardCampaign":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    @classmethod
    def sc99_serve10k(
        cls,
        *,
        n_sessions: int = 10000,
        arrival_rate: float = 100.0,
        **kw: Any,
    ) -> "ShardCampaign":
        """The scale story: 10k sessions over four serve10k regions.

        Four pinned analyst populations plus a roaming population that
        lands round-robin; the roaming viewers are what exercises
        spill (their home region saturates first).
        """
        topology = named_topology("serve10k")
        profiles = tuple(
            ViewerProfile(
                name=f"analyst{i}",
                weight=1.0,
                region=f"region{i}",
            )
            for i in range(4)
        ) + (
            ViewerProfile(name="roaming", weight=1.0, frames=2),
        )
        return cls(
            name="sc99-serve10k",
            topology=topology,
            workload=WorkloadSpec(
                mode="open",
                n_viewers=n_sessions,
                arrival_rate=arrival_rate,
                profiles=profiles,
            ),
            **kw,
        )


class ShardedSessionManager:
    """Places, queues, serves, and completes sessions over the fabric.

    Deterministic by construction: sites are scanned in topology
    declaration order, ties break first-wins, the arrival schedule is
    a pure function of (workload, seed), and completions ride the
    fluid pool's events -- no set iteration, no ids, no wall clocks.
    """

    def __init__(self, config: ShardCampaign):
        self.config = config
        self.env = Environment()
        self.fabric = SiteFabric(config.topology, env=self.env)
        self.daemon = NetLogDaemon()
        self.logger = NetLogger(
            "shard",
            "session-manager",
            clock=lambda: self.env.now,
            daemon=self.daemon,
        )
        self.pool = FlowClassPool(
            self.env,
            self.fabric.sched,
            aggregate=config.flow_classes.enabled,
        )
        self.records: List[SessionRecord] = []
        self.slots: Dict[str, SlotQueue] = {}
        self.caches: Dict[str, Optional[EdgeCacheModel]] = {}
        for site in config.topology.sites:
            self.slots[site.name] = SlotQueue(
                self.env,
                max_slots=site.max_sessions,
                queue_depth=site.queue_depth,
            )
            self.caches[site.name] = (
                EdgeCacheModel(site.cache_bytes)
                if site.cache_bytes > 0
                else None
            )
        self._classes: Dict[Tuple[str, str, str, bool], FlowClass] = {}
        self._next_sid = 0
        self._rr = 0
        self._outstanding = 0
        self._arrivals_done = False
        self._all_done = Event(self.env)
        self._rngs = spawn_rngs(config.effective_seed + 7, 1)

    # -- flow classes -------------------------------------------------
    def _session_frames(self, profile: ViewerProfile) -> int:
        return (
            profile.frames
            if profile.frames is not None
            else self.config.frames
        )

    def _session_bytes(self, profile: ViewerProfile) -> float:
        return self.config.frame_bytes * self._session_frames(profile)

    def _flow_class(
        self, profile: ViewerProfile, serving: str, home: str, warm: bool
    ) -> FlowClass:
        """The (cached) class for one (profile, path, warmth) combo.

        Class identity must be stable across sessions so the pool can
        aggregate them; the key is exactly what determines the flow's
        resource footprint.
        """
        key = (profile.name, serving, home, warm)
        spec = self._classes.get(key)
        if spec is None:
            suffix = ":warm" if warm else ""
            spec = FlowClass(
                f"{profile.name}@{serving}->{home}{suffix}",
                self.fabric.path(serving, home, warm=warm),
            )
            self._classes[key] = spec
        return spec

    # -- placement ----------------------------------------------------
    def _home_of(self, profile: ViewerProfile) -> str:
        if profile.region is not None:
            return profile.region
        names = self.config.topology.site_names
        home = names[self._rr % len(names)]
        self._rr += 1
        return home

    def _least_loaded(self, order: List[str]) -> Optional[str]:
        """First site in ``order`` with a free slot and minimal load."""
        best: Optional[str] = None
        best_load = 0
        for name in order:
            slot = self.slots[name]
            if not slot.has_slot:
                continue
            if best is None or slot.active < best_load:
                best = name
                best_load = slot.active
        return best

    def _place(self, home: str) -> Tuple[str, str]:
        """(serving site, verdict) for an arrival homed at ``home``."""
        topology = self.config.topology
        names = list(topology.site_names)
        if topology.placement == "least-loaded":
            order = [home] + [n for n in names if n != home]
            if not topology.spill:
                order = [home]
            best = self._least_loaded(order)
            if best is not None:
                verdict = (
                    AdmissionVerdict.LOCAL
                    if best == home
                    else AdmissionVerdict.SPILL
                )
                return best, verdict
        else:  # nearest
            if self.slots[home].has_slot:
                return home, AdmissionVerdict.LOCAL
            if topology.spill:
                best = self._least_loaded(
                    [n for n in names if n != home]
                )
                if best is not None:
                    return best, AdmissionVerdict.SPILL
        if self.slots[home].can_queue:
            return home, AdmissionVerdict.QUEUED
        return home, AdmissionVerdict.REJECTED

    # -- session lifecycle --------------------------------------------
    def _admit(self, sid: int, profile: ViewerProfile) -> None:
        env = self.env
        home = self._home_of(profile)
        record = SessionRecord(
            session=sid,
            profile=profile.name,
            arrival=env.now,
            weight=profile.weight,
            home=home,
        )
        self.records.append(record)
        self.logger.log(
            Tags.SVC_ARRIVAL, session=sid, profile=profile.name, home=home
        )
        serving, verdict = self._place(home)
        record.verdict = verdict
        self.logger.log(
            Tags.SVC_PLACE,
            session=sid,
            home=home,
            site=serving,
            verdict=verdict,
        )
        if verdict == AdmissionVerdict.REJECTED:
            record.rejected = True
            record.reject_reason = "capacity"
            self.logger.log(
                Tags.SVC_REJECT, session=sid, reason="capacity"
            )
            self._resolve()
            return
        record.served = serving
        slot = self.slots[serving].acquire()
        if slot is not None:
            # QUEUED: the home FIFO hands this arrival a slot later;
            # the slot is already held when the event fires.
            self.logger.log(
                Tags.SVC_QUEUE,
                session=sid,
                depth=self.slots[serving].depth,
            )
            slot.callbacks.append(
                lambda _ev, r=record, p=profile, s=serving: self._start(
                    r, p, s
                )
            )
            return
        if verdict == AdmissionVerdict.SPILL:
            self.logger.log(
                Tags.SVC_SPILL, session=sid, home=home, site=serving
            )
        self._start(record, profile, serving)

    def _start(
        self, record: SessionRecord, profile: ViewerProfile, serving: str
    ) -> None:
        env = self.env
        record.admitted = env.now
        record.started = env.now
        self.logger.log(
            Tags.SVC_ADMIT,
            session=record.session,
            wait=env.now - record.arrival,
        )
        self.logger.log(
            Tags.SVC_START, session=record.session, site=serving
        )
        work = self._session_bytes(profile)
        cache = self.caches[serving]
        warm = (
            cache.lookup((profile.name,), work)
            if cache is not None
            else False
        )
        spec = self._flow_class(profile, serving, record.home, warm)
        done = self.pool.submit(spec, work, name=f"s{record.session}")
        frames = self._session_frames(profile)
        done.callbacks.append(
            lambda _ev, r=record, s=serving, n=frames: self._finish(r, s, n)
        )

    def _finish(
        self, record: SessionRecord, serving: str, frames: int
    ) -> None:
        record.ended = self.env.now
        started = record.started if record.started is not None else 0.0
        # The flow delivers frames uniformly: the first lands one
        # frame-span into the session's active window.
        record.first_frame = started + (record.ended - started) / frames
        record.frames = frames
        self.logger.log(
            Tags.SVC_END, session=record.session, frames=frames
        )
        self.slots[serving].release()
        self._resolve()

    def _resolve(self) -> None:
        self._outstanding -= 1
        if (
            self._arrivals_done
            and self._outstanding == 0
            and not self._all_done.triggered
        ):
            self._all_done.succeed(None)

    # -- driver -------------------------------------------------------
    def _run(self) -> Generator[Any, Any, None]:
        env = self.env
        arrivals = self.config.workload.arrivals(self._rngs[0])
        for t, profile in arrivals:
            delay = t - env.now
            if delay > 0:
                yield env.timeout(delay)
            sid = self._next_sid
            self._next_sid += 1
            self._outstanding += 1
            self._admit(sid, profile)
        self._arrivals_done = True
        if self._outstanding > 0:
            yield self._all_done

    def run(self) -> Process:
        """The driver process: completes when every session resolved."""
        return self.env.process(self._run())

    # -- introspection ------------------------------------------------
    def cache_stats(self) -> Dict[str, CacheStats]:
        """Per-site edge-cache counters (sites with a cache only)."""
        return {
            name: cache.stats
            for name, cache in self.caches.items()
            if cache is not None
        }


@dataclass
class ShardResult:
    """One finished shard campaign: metrics plus allocator accounting."""

    campaign: ShardCampaign
    metrics: ShardMetrics
    records: List[SessionRecord] = field(default_factory=list)
    total_time: float = 0.0
    #: fluid allocator counters (``FluidScheduler.stats``)
    alloc: Dict[str, int] = field(default_factory=dict)
    #: flow-class pool counters (``FlowClassPool.stats``)
    flows: Dict[str, int] = field(default_factory=dict)

    def to_payload(self) -> Dict[str, Any]:
        """The versioned JSON envelope (schema_version + kind=shard)."""
        config = self.campaign
        return result_payload(
            "shard",
            self.metrics,
            campaign={
                "name": config.name,
                "sites": list(config.topology.site_names),
                "placement": config.topology.placement,
                "spill": config.topology.spill,
                "flow_classes": config.flow_classes.enabled,
                "sessions": config.workload.total_sessions,
                "seed": config.effective_seed,
            },
            total_time=self.total_time,
            alloc=self.alloc,
            flows=self.flows,
        )

    def summary(self) -> str:
        """Human-readable shard block."""
        config = self.campaign
        mode = (
            "flow-class aggregation"
            if config.flow_classes.enabled
            else "per-session oracle"
        )
        lines = [
            f"shard campaign {config.name}: "
            f"{len(config.topology.sites)} sites, "
            f"{config.topology.placement} placement, {mode}",
            self.metrics.summary(),
            f"  makespan          : {self.total_time:.1f} s simulated",
            f"  allocator         : "
            f"{self.alloc.get('flows_touched', 0)} flows touched over "
            f"{self.alloc.get('components_solved', 0)} component solves",
        ]
        return "\n".join(lines)


def run_shard_campaign(
    config: ShardCampaign,
    *,
    ulm_path: Optional[str] = None,
) -> ShardResult:
    """Build and run a sharded serving campaign to completion."""
    manager = ShardedSessionManager(config)
    done = manager.run()
    manager.env.run(until=done)
    total_time = manager.env.now
    if ulm_path is not None:
        manager.daemon.write_ulm(ulm_path)
    metrics = ShardMetrics.from_records(
        manager.records,
        config.topology.site_names,
        total_time=total_time,
        site_cache_stats=manager.cache_stats(),
    )
    return ShardResult(
        campaign=config,
        metrics=metrics,
        records=list(manager.records),
        total_time=total_time,
        alloc=manager.fabric.sched.stats.to_dict(),
        flows=manager.pool.stats.to_dict(),
    )
