"""Admission control for the multi-viewer serving layer.

Three composable gates, all deterministic:

- **max sessions** -- at most ``max_sessions`` sessions hold back-end
  pipelines at once; arrivals beyond capacity wait in a FIFO queue of
  depth ``queue_depth`` or are rejected outright.
- **token bucket on aggregate bandwidth** -- each admission spends the
  session's estimated WAN bytes from a bucket refilled at
  ``token_rate`` bytes/s (burst ``token_burst``). A session whose cost
  exceeds the burst can never be admitted and is rejected; otherwise
  the shortfall converts to a deterministic admission delay.
- **fair-share weights** -- each admitted session receives a QoS
  bandwidth floor of ``fair_share_rate * weight`` bytes/s on its DPSS
  reads, fed into :func:`repro.simcore.fairshare.max_min_allocation`
  as the phase-1 reservation (via
  :attr:`repro.config.NetworkConfig.reserved_rate`).

The slot gate is factored into :class:`SlotQueue` so both the
single-site :class:`~repro.service.manager.SessionManager` and the
multi-site shard layer share one FIFO discipline, and the sharded
layer adds :class:`AdmissionVerdict` -- the Icarus computation-spot
outcome vocabulary (per-site capacity check, queue, spill to a remote
site, or reject).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Optional

from repro.util.validation import check_non_negative

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.env import Environment
    from repro.simcore.events import Event


class AdmissionVerdict:
    """Per-site admission outcomes (the Icarus verdict vocabulary).

    ``LOCAL`` -- a slot is free at the home site; ``SPILL`` -- home is
    saturated, a remote site serves instead; ``QUEUED`` -- no slot
    anywhere allowed, the arrival waits in the home site's FIFO;
    ``REJECTED`` -- capacity and queue are both exhausted.
    """

    LOCAL = "local"
    SPILL = "spill"
    QUEUED = "queued"
    REJECTED = "rejected"

    ALL = (LOCAL, SPILL, QUEUED, REJECTED)


class SlotQueue:
    """FIFO admission slots with O(1) deterministic handoff.

    ``acquire`` either takes a slot immediately (returns ``None``), or
    returns an :class:`~repro.simcore.events.Event` the caller must
    wait on, or raises :class:`QueueFull`. ``release`` hands the freed
    slot *directly* to the oldest waiter -- one ``popleft`` on a
    deque, never a scan or re-sort -- so a 10k-deep queue drains in
    strict arrival order at constant per-release cost, and the active
    count is untouched while anyone is waiting.
    """

    def __init__(
        self,
        env: "Environment",
        max_slots: Optional[int] = None,
        queue_depth: int = 0,
    ):
        if max_slots is not None and max_slots < 0:
            raise ValueError(f"max_slots must be >= 0, got {max_slots}")
        check_non_negative("queue_depth", queue_depth)
        self.env = env
        self.max_slots = max_slots
        self.queue_depth = queue_depth
        self.active = 0
        self._waiting: Deque["Event"] = deque()

    @property
    def depth(self) -> int:
        """Arrivals currently waiting for a slot."""
        return len(self._waiting)

    @property
    def has_slot(self) -> bool:
        """True when an arrival would be admitted immediately."""
        return self.max_slots is None or self.active < self.max_slots

    @property
    def can_queue(self) -> bool:
        """True when an arrival at capacity could wait for a slot."""
        return (
            self.max_slots is not None
            and self.max_slots > 0
            and len(self._waiting) < self.queue_depth
        )

    def acquire(self) -> Optional["Event"]:
        """Take a slot now (``None``) or join the FIFO (an event).

        Raises :class:`QueueFull` when neither is possible. The
        returned event fires when a released slot reaches this waiter;
        the slot is already held at that point -- do not acquire again.
        """
        from repro.simcore.events import Event

        if self.has_slot:
            self.active += 1
            return None
        if not self.can_queue:
            raise QueueFull(
                f"no slot free and the wait queue is full "
                f"(depth {len(self._waiting)})"
            )
        slot = Event(self.env)
        self._waiting.append(slot)
        return slot

    def release(self) -> None:
        """Free a slot; the oldest waiter inherits it in O(1)."""
        if self._waiting:
            self._waiting.popleft().succeed(None)
        else:
            self.active -= 1


class QueueFull(Exception):
    """Raised by :meth:`SlotQueue.acquire` when admission must reject."""


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs for the three admission gates; defaults admit everyone."""

    #: concurrent session limit; ``None`` = unlimited, 0 = reject all
    max_sessions: Optional[int] = None
    #: arrivals allowed to wait for a slot when at capacity
    queue_depth: int = 0
    #: token-bucket refill in bytes/s; 0 disables the bucket
    token_rate: float = 0.0
    #: token-bucket capacity in bytes (must be > 0 when rate is)
    token_burst: float = 0.0
    #: QoS floor granted per unit of viewer weight, bytes/s
    fair_share_rate: float = 0.0

    def __post_init__(self):
        if self.max_sessions is not None and self.max_sessions < 0:
            raise ValueError(
                f"max_sessions must be >= 0, got {self.max_sessions}"
            )
        check_non_negative("queue_depth", self.queue_depth)
        check_non_negative("token_rate", self.token_rate)
        check_non_negative("token_burst", self.token_burst)
        check_non_negative("fair_share_rate", self.fair_share_rate)
        if self.token_rate > 0 and self.token_burst <= 0:
            raise ValueError("token_burst must be > 0 when token_rate is set")

    def with_changes(self, **changes: Any) -> "AdmissionPolicy":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


class TokenBucket:
    """Deterministic token bucket driven by the simulation clock.

    Tokens are *reserved at decision time*: :meth:`reserve` debits the
    cost immediately and returns how long the caller must wait before
    the debit is covered, so a burst of simultaneous arrivals receives
    strictly increasing admission delays in arrival order.
    """

    def __init__(self, rate: float, burst: float, *, now: float = 0.0):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst <= 0:
            raise ValueError(f"burst must be > 0, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        #: token level; goes negative while reservations are unpaid
        self._level = float(burst)
        self._t = float(now)

    def _advance(self, now: float) -> None:
        if now > self._t:
            self._level = min(
                self.burst, self._level + self.rate * (now - self._t)
            )
            self._t = now

    def reserve(self, cost: float, now: float) -> Optional[float]:
        """Debit ``cost`` tokens; return seconds until covered.

        Returns 0.0 when tokens are available now, a positive wait
        when the refill must catch up, or ``None`` when ``cost``
        exceeds the burst and can never be covered.
        """
        check_non_negative("cost", cost)
        if cost > self.burst:
            return None
        self._advance(now)
        self._level -= cost
        if self._level >= 0:
            return 0.0
        return -self._level / self.rate
