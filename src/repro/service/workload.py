"""Seeded viewer workloads: who shows up, when, over which WAN.

Two arrival disciplines:

- **open loop** ("open"): a Poisson process -- the first viewer
  arrives at t=0 (so a single-viewer workload reproduces the plain
  single-session campaign exactly) and subsequent inter-arrival gaps
  are exponential with mean ``1 / arrival_rate``. Arrivals do not wait
  for earlier sessions; pressure on admission control is external.
- **closed loop** ("closed"): ``n_viewers`` viewers each run
  ``requests_per_viewer`` sessions back to back, thinking an
  exponential ``think_time`` between them -- the interactive-analyst
  pattern of the paper's section 5 usage story.

Viewer heterogeneity comes from ``profiles``: each arrival cycles
through the tuple, picking up that profile's WAN path (a
:class:`~repro.core.platforms.WanSpec`, or ``None`` for a local
gigabit LAN hop exactly like the single-session campaign's local
viewer), fair-share weight, and optional frame-count override.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.core.platforms import WanSpec
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class ViewerProfile:
    """One class of viewer: WAN path, fair-share weight, frames."""

    name: str = "local"
    #: WAN between the back-end pool and this viewer; ``None`` puts
    #: the viewer on a local gigabit LAN (the co-located case)
    wan: Optional[WanSpec] = None
    #: fair-share weight; multiplied by the policy's
    #: ``fair_share_rate`` to form the session's bandwidth floor
    weight: float = 1.0
    #: timesteps this viewer watches; ``None`` = the campaign default
    frames: Optional[int] = None
    #: fractional viewport rect (x0, y0, x1, y1) this viewer looks at
    #: in tile mode; ``None`` = the whole frame. Overlapping frusta
    #: from different viewers share tile renders through the cache.
    frustum: Optional[Tuple[float, float, float, float]] = None
    #: home site of this viewer in a multi-site topology
    #: (:class:`repro.config.TopologyConfig`); ``None`` assigns sites
    #: round-robin in arrival order. Ignored by single-site campaigns.
    region: Optional[str] = None

    def __post_init__(self):
        check_positive("weight", self.weight)
        if self.frames is not None and self.frames < 1:
            raise ValueError(f"frames must be >= 1, got {self.frames}")
        if self.frustum is not None:
            x0, y0, x1, y1 = self.frustum
            if not (0.0 <= x0 < x1 <= 1.0 and 0.0 <= y0 < y1 <= 1.0):
                raise ValueError(
                    f"frustum must satisfy 0 <= lo < hi <= 1, got "
                    f"{self.frustum}"
                )


@dataclass(frozen=True)
class WorkloadSpec:
    """A seeded population of viewers and their arrival discipline."""

    mode: str = "open"
    n_viewers: int = 1
    #: open loop: mean arrivals per second
    arrival_rate: float = 1.0
    #: closed loop: mean seconds between a viewer's sessions
    think_time: float = 1.0
    #: closed loop: sessions each viewer runs
    requests_per_viewer: int = 1
    profiles: Tuple[ViewerProfile, ...] = (ViewerProfile(),)

    def __post_init__(self):
        if self.mode not in ("open", "closed"):
            raise ValueError(
                f"mode must be 'open' or 'closed', got {self.mode!r}"
            )
        check_non_negative("n_viewers", self.n_viewers)
        check_positive("arrival_rate", self.arrival_rate)
        check_non_negative("think_time", self.think_time)
        if self.requests_per_viewer < 1:
            raise ValueError(
                f"requests_per_viewer must be >= 1, "
                f"got {self.requests_per_viewer}"
            )
        if not self.profiles:
            raise ValueError("profiles must not be empty")

    def with_changes(self, **changes: Any) -> "WorkloadSpec":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    @property
    def total_sessions(self) -> int:
        """Sessions this workload offers over its lifetime."""
        if self.mode == "open":
            return self.n_viewers
        return self.n_viewers * self.requests_per_viewer

    def profile_of(self, index: int) -> ViewerProfile:
        """The profile the ``index``-th viewer (or session) uses."""
        return self.profiles[index % len(self.profiles)]

    def arrivals(
        self, rng: np.random.Generator
    ) -> List[Tuple[float, ViewerProfile]]:
        """Open-loop arrival schedule: (time, profile) pairs, sorted.

        The first arrival is pinned to t=0; the remaining gaps are
        exponential draws from ``rng``, so the whole schedule is a
        pure function of (spec, seed).
        """
        if self.mode != "open":
            raise ValueError("arrivals() applies to open-loop workloads")
        out: List[Tuple[float, ViewerProfile]] = []
        t = 0.0
        for i in range(self.n_viewers):
            if i > 0:
                t += float(rng.exponential(1.0 / self.arrival_rate))
            out.append((t, self.profile_of(i)))
        return out
