"""AST-based project linter: repo invariants ruff cannot express.

Exposed as ``visapult lint``. The rules encode how this codebase keeps
its simulation honest:

``VIS101`` (wall-clock in sim code)
    Sim-only packages must tell time with ``env.now``; any ``time``
    module usage there (``time.time``, ``time.sleep``, ...) would leak
    wall-clock into simulated results.
``VIS102`` (threading in sim code)
    Concurrency in sim-only packages is sim processes; real
    ``threading`` belongs to :mod:`repro.live` only.
``VIS103`` (process without yield)
    Every function handed to ``env.process(...)`` must be a generator
    (contain ``yield``) -- a plain function silently becomes a
    zero-duration process.
``VIS104`` (undeclared event name)
    NetLogger event names must come from the declared vocabulary in
    :mod:`repro.netlogger.events` (the ``BE_*``/``V_*``/``DPSS_*``/
    ``PIPE_*``/``SAN_*`` tags); and every tag declared on a ``Tags``
    class must carry one of the known prefixes.
``VIS105`` (bare except)
    ``except:`` swallows ``KeyboardInterrupt`` and kernel-level
    simulation errors alike; name the exception.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.netlogger.events import TAG_PREFIXES, declared_tags

#: packages (path components under ``repro/``) that run in simulated
#: time only and must not touch wall clocks or real threads
SIM_ONLY_PACKAGES = (
    "simcore", "netsim", "dpss", "backend", "viewer", "faults", "service"
)

#: ``time``-module attributes that read or burn wall-clock
WALL_CLOCK_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "sleep",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
    }
)


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"


def _is_sim_only(path: str) -> bool:
    parts = os.path.normpath(path).split(os.sep)
    for i, part in enumerate(parts[:-1]):
        if part == "repro" and parts[i + 1] in SIM_ONLY_PACKAGES:
            return True
    return False


def _has_own_yield(fn: ast.AST) -> bool:
    """True if the function body yields, ignoring nested functions."""
    todo = list(ast.iter_child_nodes(fn))
    while todo:
        node = todo.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        todo.extend(ast.iter_child_nodes(node))
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, tags: frozenset):
        self.path = path
        self.sim_only = _is_sim_only(path)
        self.tags = tags
        self.findings: List[LintFinding] = []
        #: module-level functions and (class, method) definitions, for
        #: resolving what ``env.process(f(...))`` actually launches
        self.functions: Dict[str, ast.FunctionDef] = {}
        self.methods: Dict[Tuple[str, str], ast.FunctionDef] = {}
        self._class_stack: List[str] = []
        self._deferred_calls: List[Tuple[ast.Call, Optional[str]]] = []

    def _add(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            LintFinding(
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0) + 1,
                code=code,
                message=message,
            )
        )

    # -- VIS101/VIS102: imports ---------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        if self.sim_only:
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root == "time":
                    self._add(
                        node,
                        "VIS101",
                        "wall-clock module imported in sim-only code; "
                        "use env.now / env.timeout",
                    )
                elif root == "threading":
                    self._add(
                        node,
                        "VIS102",
                        "threading imported in sim-only code; use sim "
                        "processes (repro.simcore)",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self.sim_only and node.module is not None:
            root = node.module.split(".")[0]
            if root == "time":
                self._add(
                    node,
                    "VIS101",
                    "wall-clock import in sim-only code; use env.now / "
                    "env.timeout",
                )
            elif root == "threading":
                self._add(
                    node,
                    "VIS102",
                    "threading import in sim-only code; use sim "
                    "processes (repro.simcore)",
                )
        self.generic_visit(node)

    # -- VIS101: attribute use ----------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            self.sim_only
            and isinstance(node.value, ast.Name)
            and node.value.id == "time"
            and node.attr in WALL_CLOCK_ATTRS
        ):
            self._add(
                node,
                "VIS101",
                f"time.{node.attr} in sim-only code; use env.now / "
                "env.timeout",
            )
        self.generic_visit(node)

    # -- function/class bookkeeping -----------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if node.name == "Tags":
            self._check_tags_class(node)
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self._class_stack:
            self.methods[(self._class_stack[-1], node.name)] = node
        else:
            self.functions[node.name] = node
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    # -- VIS103/VIS104: calls -----------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "process" and node.args:
                cls = self._class_stack[-1] if self._class_stack else None
                self._deferred_calls.append((node, cls))
            elif func.attr == "log" and node.args:
                self._check_log_call(node)
        self.generic_visit(node)

    def _check_log_call(self, node: ast.Call) -> None:
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            if first.value not in self.tags:
                self._add(
                    first,
                    "VIS104",
                    f"event name {first.value!r} is not declared in "
                    "repro.netlogger.events.Tags",
                )

    def _check_tags_class(self, node: ast.ClassDef) -> None:
        for stmt in node.body:
            if not isinstance(stmt, ast.Assign):
                continue
            value = stmt.value
            if not (
                isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                continue
            if not value.value.startswith(TAG_PREFIXES):
                self._add(
                    stmt,
                    "VIS104",
                    f"declared tag {value.value!r} does not match the "
                    f"prefixes {'/'.join(TAG_PREFIXES)}",
                )

    def _resolve_process_target(
        self, call: ast.Call, cls: Optional[str]
    ) -> Optional[ast.FunctionDef]:
        arg = call.args[0]
        if not isinstance(arg, ast.Call):
            return None
        target = arg.func
        if isinstance(target, ast.Name):
            return self.functions.get(target.id)
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and cls is not None
        ):
            return self.methods.get((cls, target.attr))
        return None

    def check_deferred(self) -> None:
        """Run the after-the-whole-module-is-indexed checks (VIS103)."""
        for call, cls in self._deferred_calls:
            fn = self._resolve_process_target(call, cls)
            if fn is not None and not _has_own_yield(fn):
                self._add(
                    call,
                    "VIS103",
                    f"{fn.name}() is launched as a sim process but "
                    "contains no yield; it would run as a zero-duration "
                    "process",
                )

    # -- VIS105: bare except ------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._add(
                node,
                "VIS105",
                "bare except catches KeyboardInterrupt and kernel "
                "errors; name the exception",
            )
        self.generic_visit(node)


def lint_source(source: str, path: str) -> List[LintFinding]:
    """Lint one module's source text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintFinding(
                path=path,
                line=exc.lineno or 0,
                col=(exc.offset or 0),
                code="VIS100",
                message=f"syntax error: {exc.msg}",
            )
        ]
    visitor = _Visitor(path, declared_tags())
    visitor.visit(tree)
    visitor.check_deferred()
    return visitor.findings


def lint_file(path: str) -> List[LintFinding]:
    """Lint one file on disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return lint_source(fh.read(), path)


def _iter_python_files(paths: Iterable[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [
                    d for d in dirnames if d != "__pycache__"
                ]
                files.extend(
                    os.path.join(dirpath, f)
                    for f in sorted(filenames)
                    if f.endswith(".py")
                )
        else:
            files.append(path)
    return files


def default_target() -> str:
    """The package source tree, the default thing ``visapult lint`` checks."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def run_lint(paths: Optional[Sequence[str]] = None) -> List[LintFinding]:
    """Lint ``paths`` (files or directories); defaults to the package."""
    if not paths:
        paths = [default_target()]
    findings: List[LintFinding] = []
    for path in _iter_python_files(paths):
        findings.extend(lint_file(path))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: print findings, exit 1 if any."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="visapult lint",
        description="project-invariant linter (VIS1xx rules)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    opts = parser.parse_args(argv)
    findings = run_lint(opts.paths)
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    print("lint: clean")
    return 0
