"""The ``visapult check`` driver: VIS2xx analysis, baseline, reports.

Runs the determinism dataflow pass (:mod:`~repro.analysis.dataflow`)
and the protocol typestate pass (:mod:`~repro.analysis.typestate`)
over a source tree, subtracts the allowlist pragmas and the committed
findings baseline, and reports what is *new*.  The CI gate fails only
on new findings, so the analyzer can be adopted with a non-empty tree
and ratcheted down.

Suppression has two distinct levels, with different semantics:

- an ``# vis: allow[VIS2xx] reason`` pragma marks a sink *proven
  safe* by review; the justification lives next to the code and the
  finding is never reported.
- ``analysis/baseline.json`` *grandfathers* findings nobody has
  proven safe yet.  They still show up in the JSON/SARIF reports
  (flagged ``baselined``), the gate just does not fail on them.  The
  baseline is matched on a line-insensitive fingerprint (path, code,
  message) so unrelated edits do not churn it; ``--update-baseline``
  rewrites it from the current tree.

Machine-readable output: ``--json`` (the findings report the CI step
uploads) and ``--sarif`` (SARIF 2.1.0, so findings annotate PRs via
the code-scanning upload).
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro._version import __version__
from repro.analysis import dataflow, typestate
from repro.analysis.staticbase import (
    CheckFinding,
    ParsedModule,
    filter_findings,
    iter_python_files,
    parse_module,
)

#: default location of the committed findings baseline, relative to
#: the repository root (where CI invokes ``visapult check``)
DEFAULT_BASELINE = os.path.join("analysis", "baseline.json")

_RULE_DESCRIPTIONS: Dict[str, str] = {
    "VIS200": "source file does not parse",
    "VIS201": "nondeterministic iteration order reaches a loop or emit",
    "VIS202": "id()/hash() identity flows into a name, seed, log field "
              "or container key",
    "VIS203": "unseeded RNG (random.Random(), module-global random/"
              "numpy.random functions)",
    "VIS204": "wall-clock value flows into a seed or name",
    "VIS210": "BoundedBuffer reserve() without commit()/cancel() in "
              "scope (or vice versa)",
    "VIS211": "render-cache begin() without publish()+abandon() legs "
              "in scope",
    "VIS212": "connection opened but never closed, stored or handed "
              "off",
    "VIS213": "MsgType member without a decoder branch in the protocol "
              "registry",
}


@dataclass
class CheckResult:
    """The outcome of one ``visapult check`` run.

    ``findings`` is everything the rules reported after pragma
    suppression; ``new_findings`` is the subset not matched by the
    baseline -- the set the CI gate fails on.  ``allowed`` counts
    pragma-suppressed findings, ``baselined`` the grandfathered ones,
    and ``stale_baseline`` lists baseline entries that no longer match
    anything (fixed findings whose suppression should be deleted).
    """

    findings: List[CheckFinding] = field(default_factory=list)
    new_findings: List[CheckFinding] = field(default_factory=list)
    allowed: int = 0
    baselined: int = 0
    stale_baseline: List[Dict[str, object]] = field(default_factory=list)
    files_checked: int = 0
    baseline_path: Optional[str] = None

    @property
    def clean(self) -> bool:
        """True when no *new* findings were reported (the gate)."""
        return not self.new_findings

    def summary(self) -> str:
        """A human-readable block mirroring the sanitizer reports."""
        lines = [
            f"check: {len(self.findings)} finding(s) over "
            f"{self.files_checked} file(s) "
            f"({self.allowed} allowlisted, {self.baselined} baselined, "
            f"{len(self.new_findings)} new)"
        ]
        lines.extend(f"  NEW {finding}" for finding in self.new_findings)
        baselined = [
            f for f in self.findings if f not in self.new_findings
        ]
        lines.extend(f"  baselined {finding}" for finding in baselined)
        for entry in self.stale_baseline:
            lines.append(
                f"  stale baseline entry: {entry.get('path')} "
                f"{entry.get('code')} (fixed? run --update-baseline)"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """The machine-readable (``--json``) report."""
        new = set(self.new_findings)
        return {
            "version": 1,
            "tool": {"name": "visapult check", "version": __version__},
            "files_checked": self.files_checked,
            "allowed": self.allowed,
            "baselined": self.baselined,
            "baseline_path": self.baseline_path,
            "counts": dict(
                sorted(Counter(f.code for f in self.findings).items())
            ),
            "findings": [
                dict(f.to_dict(), baselined=f not in new)
                for f in self.findings
            ],
            "stale_baseline": list(self.stale_baseline),
        }


def default_target() -> str:
    """The installed package tree, the default thing checked."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def analyze_paths(
    paths: Optional[Sequence[str]] = None,
) -> Tuple[List[CheckFinding], int, int]:
    """Run every VIS2xx pass over ``paths``.

    Returns (findings after pragma suppression, pragma-suppressed
    count, files checked).  Parse failures become ``VIS200`` findings
    rather than crashes -- a tree that does not parse must fail the
    gate, not the tool.
    """
    if not paths:
        paths = [default_target()]
    findings: List[CheckFinding] = []
    allowed = 0
    modules: List[ParsedModule] = []
    files = iter_python_files(paths)
    for path in files:
        try:
            module = parse_module(path)
        except SyntaxError as exc:
            findings.append(
                CheckFinding(
                    path=path,
                    line=exc.lineno or 0,
                    col=exc.offset or 0,
                    code="VIS200",
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        modules.append(module)
        raw = dataflow.analyze_module(module) + typestate.analyze_module(
            module
        )
        kept, n_allowed = filter_findings(module, raw)
        findings.extend(kept)
        allowed += n_allowed
    by_path = {m.path: m for m in modules}
    registry_raw = typestate.check_protocol_registry(modules)
    for finding in registry_raw:
        module = by_path[finding.path]
        if module.is_allowed(finding.code, finding.line):
            allowed += 1
        else:
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code, f.message))
    return findings, allowed, len(files)


# -- baseline ----------------------------------------------------------


def load_baseline(path: str) -> List[Dict[str, object]]:
    """Read a baseline file; returns its finding entries."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if (
        not isinstance(data, dict)
        or data.get("version") != 1
        or not isinstance(data.get("findings"), list)
    ):
        raise ValueError(
            f"{path} is not a visapult-check baseline (want "
            '{"version": 1, "findings": [...]})'
        )
    return list(data["findings"])


def baseline_dict(findings: Sequence[CheckFinding]) -> Dict[str, object]:
    """The serialized baseline for the given findings."""
    return {
        "version": 1,
        "tool": "visapult check",
        "findings": [f.to_dict() for f in findings],
    }


def write_baseline(findings: Sequence[CheckFinding], path: str) -> None:
    """Write (or rewrite) the baseline file."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(baseline_dict(findings), fh, indent=2)
        fh.write("\n")


def match_baseline(
    findings: Sequence[CheckFinding],
    entries: Sequence[Dict[str, object]],
) -> Tuple[List[CheckFinding], List[Dict[str, object]]]:
    """Split findings into (new, stale-baseline-entries).

    Matching is by line-insensitive fingerprint with multiplicity:
    each baseline entry absorbs at most one finding, so a *second*
    occurrence of a grandfathered defect is still new.
    """
    def _key(entry: Dict[str, object]) -> Tuple[str, str, str]:
        return (
            str(entry.get("path")),
            str(entry.get("code")),
            str(entry.get("message")),
        )

    budget: Counter = Counter(_key(entry) for entry in entries)
    new: List[CheckFinding] = []
    for finding in findings:
        key = finding.fingerprint
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        else:
            new.append(finding)
    stale: List[Dict[str, object]] = []
    for entry in entries:
        key = _key(entry)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            stale.append(entry)
    return new, stale


def run_check(
    paths: Optional[Sequence[str]] = None,
    *,
    baseline: Optional[str] = None,
    use_baseline: bool = True,
) -> CheckResult:
    """Run the VIS2xx analyzers and compare against the baseline.

    ``paths`` defaults to the installed ``repro`` package.
    ``baseline`` names the baseline file; when None the committed
    default (``analysis/baseline.json`` under the current directory)
    is used if it exists.  ``use_baseline=False`` treats every finding
    as new.
    """
    findings, allowed, files = analyze_paths(paths)
    result = CheckResult(
        findings=findings, allowed=allowed, files_checked=files
    )
    entries: List[Dict[str, object]] = []
    if use_baseline:
        baseline_path = baseline or (
            DEFAULT_BASELINE if os.path.exists(DEFAULT_BASELINE) else None
        )
        if baseline_path is not None:
            entries = load_baseline(baseline_path)
            result.baseline_path = baseline_path
    new, stale = match_baseline(findings, entries)
    result.new_findings = new
    result.baselined = len(findings) - len(new)
    result.stale_baseline = stale
    return result


# -- SARIF -------------------------------------------------------------


def to_sarif(result: CheckResult) -> Dict[str, object]:
    """The SARIF 2.1.0 report for one run (PR annotations in CI)."""
    codes = sorted({f.code for f in result.findings} | set())
    rules = [
        {
            "id": code,
            "shortDescription": {
                "text": _RULE_DESCRIPTIONS.get(code, code)
            },
        }
        for code in codes
    ]
    rule_index = {code: i for i, code in enumerate(codes)}
    new = set(result.new_findings)
    results = [
        {
            "ruleId": finding.code,
            "ruleIndex": rule_index[finding.code],
            "level": "error" if finding in new else "note",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.to_dict()["path"],
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": max(finding.col, 1),
                        },
                    }
                }
            ],
        }
        for finding in result.findings
    ]
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "visapult-check",
                        "version": __version__,
                        "informationUri": (
                            "https://example.invalid/visapult-check"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


# -- CLI ---------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point for ``visapult check``."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="visapult check",
        description=(
            "determinism & protocol-typestate analyzer (VIS2xx rules)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (default: the repro package)",
    )
    parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="write the machine-readable findings report "
             "(default stdout)",
    )
    parser.add_argument(
        "--sarif",
        default=None,
        metavar="PATH",
        help="write a SARIF 2.1.0 report for PR annotation",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=f"baseline findings file (default: {DEFAULT_BASELINE} "
             "when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline; every finding is new",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    opts = parser.parse_args(argv)
    result = run_check(
        opts.paths,
        baseline=opts.baseline,
        # rewriting the baseline must not require one to exist already
        use_baseline=not (opts.no_baseline or opts.update_baseline),
    )
    if opts.update_baseline:
        path = opts.baseline or DEFAULT_BASELINE
        write_baseline(result.findings, path)
        print(
            f"baseline: {len(result.findings)} finding(s) -> {path}"
        )
        return 0
    if opts.json is not None:
        payload = json.dumps(result.to_dict(), indent=2)
        if opts.json == "-":
            print(payload)
        else:
            with open(opts.json, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
            print(f"findings report -> {opts.json}")
    if opts.sarif is not None:
        with open(opts.sarif, "w", encoding="utf-8") as fh:
            json.dump(to_sarif(result), fh, indent=2)
            fh.write("\n")
        print(f"SARIF report -> {opts.sarif}")
    if opts.json != "-":
        print(result.summary())
    if not result.clean:
        print(
            f"{len(result.new_findings)} new finding(s) not in the "
            "baseline",
            file=sys.stderr,
        )
        return 1
    return 0
