"""Shared plumbing for the VIS2xx static analyzers (``visapult check``).

The dataflow (:mod:`~repro.analysis.dataflow`) and typestate
(:mod:`~repro.analysis.typestate`) passes both reduce to
:class:`CheckFinding` records over parsed modules.  This module holds
the pieces they share:

- :class:`CheckFinding` -- one rule violation at a source location,
  with a location-tolerant :attr:`~CheckFinding.fingerprint` used for
  baseline matching.
- :class:`ParsedModule` -- a parsed source file plus its allowlist
  pragmas, handed to every pass so each file is read and parsed once.
- the ``# vis: allow[VIS2xx]`` pragma scanner.  A pragma on a finding's
  line (or on a comment line immediately above it) marks the sink as
  *proven safe* and suppresses the finding at the source; the reviewed
  reason travels with the code.  This is distinct from the baseline
  file, which merely *grandfathers* findings nobody has proven safe
  yet (see :mod:`~repro.analysis.check`).
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

#: packages under ``repro/`` whose results must be bitwise reproducible
#: run to run; the determinism rules report their sinks here.  ``live``
#: is exempt (real threads and wall clocks by design), as is the
#: analysis package itself (identity-keyed *runtime* bookkeeping).
DETERMINISM_EXEMPT_PACKAGES = ("live",)

_PRAGMA_RE = re.compile(r"#\s*vis:\s*allow\[([A-Za-z0-9_,\s]+)\]")
_COMMENT_ONLY_RE = re.compile(r"^\s*#")


@dataclass(frozen=True)
class CheckFinding:
    """One VIS2xx rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """Line-insensitive identity used for baseline matching.

        Keyed on (normalized path, code, message) so unrelated edits
        that shift line numbers do not churn the baseline.
        """
        return (normalize_path(self.path), self.code, self.message)

    def to_dict(self) -> Dict[str, object]:
        """The JSON-report form of this finding."""
        return {
            "path": normalize_path(self.path),
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


def normalize_path(path: str) -> str:
    """Make ``path`` checkout-relative and POSIX-flavored.

    Findings must compare equal between CI (``src/repro/...``) and a
    local run against an installed tree, so anything up to and
    including the last ``repro`` package root is stripped.
    """
    norm = os.path.normpath(path).replace(os.sep, "/")
    parts = norm.split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return norm


def package_of(path: str) -> Optional[str]:
    """The sub-package under ``repro/`` a file lives in, if any."""
    parts = normalize_path(path).split("/")
    if len(parts) >= 3 and parts[0] == "repro":
        return parts[1]
    return None


def scan_allow_pragmas(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> rule codes allowlisted on that line.

    A pragma on a *comment-only* line also covers every following
    comment line and the first code line after them, so statements can
    carry a multi-line justification above them::

        # vis: allow[VIS202] identity dedup within one solve pass;
        # the seen-set is never iterated or logged.
        seen.add(id(sub))
    """
    lines = source.splitlines()
    allowed: Dict[int, set] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        codes = {
            code.strip().upper()
            for code in match.group(1).split(",")
            if code.strip()
        }
        allowed.setdefault(lineno, set()).update(codes)
        if _COMMENT_ONLY_RE.match(text):
            cover = lineno + 1
            while cover <= len(lines) and _COMMENT_ONLY_RE.match(
                lines[cover - 1]
            ):
                allowed.setdefault(cover, set()).update(codes)
                cover += 1
            allowed.setdefault(cover, set()).update(codes)
    return {line: frozenset(codes) for line, codes in allowed.items()}


@dataclass
class ParsedModule:
    """One source file, parsed once and shared by every pass."""

    path: str
    source: str
    tree: ast.Module
    allow: Dict[int, FrozenSet[str]]

    @property
    def package(self) -> Optional[str]:
        """The ``repro`` sub-package this module belongs to."""
        return package_of(self.path)

    @property
    def determinism_scoped(self) -> bool:
        """True when the determinism rules apply to this module."""
        return self.package not in DETERMINISM_EXEMPT_PACKAGES

    def is_allowed(self, code: str, line: int) -> bool:
        """True when ``code`` carries an allow pragma covering ``line``."""
        return code in self.allow.get(line, frozenset())


def parse_module(path: str, source: Optional[str] = None) -> ParsedModule:
    """Read (if needed) and parse one module.

    Raises :class:`SyntaxError` on unparsable source; the driver turns
    that into a ``VIS200`` finding.
    """
    if source is None:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
    tree = ast.parse(source, filename=path)
    return ParsedModule(
        path=path,
        source=source,
        tree=tree,
        allow=scan_allow_pragmas(source),
    )


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                files.extend(
                    os.path.join(dirpath, f)
                    for f in sorted(filenames)
                    if f.endswith(".py")
                )
        else:
            files.append(path)
    return files


def filter_findings(
    module: ParsedModule, findings: Sequence[CheckFinding]
) -> Tuple[List[CheckFinding], int]:
    """Drop pragma-allowlisted findings; returns (kept, allowed count)."""
    kept: List[CheckFinding] = []
    allowed = 0
    for finding in findings:
        if module.is_allowed(finding.code, finding.line):
            allowed += 1
        else:
            kept.append(finding)
    return kept, allowed
