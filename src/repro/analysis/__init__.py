"""Static analysis and runtime sanitizers for the concurrency layer.

Two halves, one goal: machine-check the handshake disciplines the
paper's pipeline depends on (Appendix B's semaphore pair over a double
buffer, the staged-pipeline credits, the live-mode locks).

- :mod:`~repro.analysis.sanitizer` -- a tsan-for-the-DES. Opt-in
  hooks in the sim primitives build a wait-for graph and catch
  deadlocks, hangs, lost wakeups, leaked reserve credits and
  buffer-protocol violations, reported as NetLogger ``SAN_*`` events.
- :mod:`~repro.analysis.threadsan` -- lockdep-style lock-order
  checking for the live (threaded) back end and viewer.
- :mod:`~repro.analysis.lint` -- the ``visapult lint`` AST linter
  enforcing repo invariants (no wall-clock or threading in sim-only
  code, processes must yield, declared event vocabulary, no bare
  except).
- :mod:`~repro.analysis.dataflow` / :mod:`~repro.analysis.typestate`
  / :mod:`~repro.analysis.check` -- the ``visapult check`` static
  analyzer: an interprocedural determinism dataflow pass and a
  protocol typestate pass (the VIS2xx rules), gated in CI against the
  committed ``analysis/baseline.json``.
- :mod:`~repro.analysis.findings` -- the shared finding/report types.
"""

from repro.analysis.findings import CATEGORY_TAGS, Finding, SanitizerReport
from repro.analysis.lint import LintFinding, lint_file, lint_source, run_lint
from repro.analysis.staticbase import CheckFinding
from repro.analysis.check import CheckResult, run_check
from repro.analysis.sanitizer import SimSanitizer, attach_sanitizer
from repro.analysis.threadsan import (
    ThreadSanitizer,
    TrackedLock,
    disable_thread_sanitizer,
    enable_thread_sanitizer,
    named_lock,
    thread_sanitizer,
)

__all__ = [
    "CATEGORY_TAGS",
    "Finding",
    "SanitizerReport",
    "SimSanitizer",
    "attach_sanitizer",
    "ThreadSanitizer",
    "TrackedLock",
    "enable_thread_sanitizer",
    "disable_thread_sanitizer",
    "thread_sanitizer",
    "named_lock",
    "LintFinding",
    "lint_source",
    "lint_file",
    "run_lint",
    "CheckFinding",
    "CheckResult",
    "run_check",
]
