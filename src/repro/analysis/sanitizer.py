"""A tsan-for-the-DES: runtime concurrency sanitizer for sim runs.

The paper's correctness story rests on a small set of handshake
disciplines -- Appendix B's semaphore pair over a double buffer, the
per-server DPSS reader threads, the barrier closing each back-end
frame -- which PR 1 generalised into :mod:`repro.simcore.pipeline`.
This module machine-checks those disciplines. It is **opt-in**: the
primitives consult ``env.sanitizer`` (``None`` by default) at each
hook point, so an un-sanitized run executes exactly the same event
sequence with a single attribute test of overhead per operation, and
a sanitized run only *observes* (it never schedules events, so sim
timings are bit-identical either way).

Detectors and their finding categories:

``deadlock``
    A cycle in the wait-for graph among blocked processes (consumer
    waits its producer which waits the consumer, ...).
``hang``
    Blocked at event exhaustion with no cycle: a consumer whose
    producers all terminated without closing the buffer, a producer
    stalled on a slot no consumer will ever free.
``credit-leak``
    A production slot was reserved (Appendix B semaphore A granted)
    but the holder terminated without committing or releasing it.
``protocol``
    Buffer-protocol violations: commit without reserve, releasing a
    credit never held, ``get`` after SHUTDOWN was delivered,
    ``task_done`` beyond the items actually consumed.
``lost-wakeup``
    A semaphore still has blocked waiters at sim end -- some ``post``
    was dropped or never issued.
``barrier-stuck``
    A barrier round never filled: fewer than ``parties`` arrivals.

Findings are reported as NetLogger ``SAN_*`` events plus a structured
:class:`~repro.analysis.findings.SanitizerReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Finding, SanitizerReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.netlogger.logger import NetLogger
    from repro.simcore.env import Environment
    from repro.simcore.events import Event
    from repro.simcore.pipeline import BoundedBuffer, Stage
    from repro.simcore.process import Process
    from repro.simcore.sync import SimBarrier, SimSemaphore


@dataclass
class _Wait:
    """One currently blocked wait on a tracked primitive."""

    kind: str  # "sem" | "barrier" | "get" | "reserve"
    primitive: Any  # SimSemaphore | SimBarrier | BoundedBuffer
    event: "Event"
    proc: Optional["Process"]
    since: float


class _BufState:
    """Per-buffer accounting the sanitizer maintains."""

    def __init__(self) -> None:
        self.producers: Dict["Process", None] = {}  # insertion-ordered set
        self.consumers: Dict["Process", None] = {}
        #: reserve credits granted but not yet committed/released
        self.outstanding: Dict[Optional["Process"], int] = {}
        self.delivered = 0
        self.task_done = 0
        self.shutdown_seen: Set[int] = set()  # id(proc)


class SimSanitizer:
    """Observes one :class:`Environment`; builds findings, never events."""

    def __init__(
        self,
        env: "Environment",
        *,
        logger: Optional["NetLogger"] = None,
    ):
        self.env = env
        self.logger = logger
        self.findings: List[Finding] = []
        self._seen: Set[Tuple[str, str, str]] = set()
        self._waits: Dict["Event", _Wait] = {}
        self._buffers: Dict["BoundedBuffer", _BufState] = {}
        self._sem_posters: Dict["SimSemaphore", Dict["Process", None]] = {}
        self._barrier_parties: Dict["SimBarrier", Dict["Process", None]] = {}
        self._stages: Dict["Process", "Stage"] = {}
        self._proc_names: Dict["Process", str] = {}
        self._prim_names: Dict[int, str] = {}
        self._name_counts: Dict[str, int] = {}

    # -- lifecycle ----------------------------------------------------
    def install(self) -> "SimSanitizer":
        """Attach to the environment (idempotent)."""
        self.env.sanitizer = self
        return self

    def detach(self) -> None:
        """Stop observing; the run continues uninstrumented."""
        if self.env.sanitizer is self:
            self.env.sanitizer = None

    # -- naming -------------------------------------------------------
    def _name(self, obj: object) -> str:
        key = id(obj)
        # vis: allow[VIS202] identity-keyed memo of live primitives;
        # the reported name is the deterministic registration-order
        # alias, never the id itself, and keys die with the run.
        if key not in self._prim_names:
            base = getattr(obj, "name", None) or type(obj).__name__.lower()
            n = self._name_counts.get(base, 0)
            self._name_counts[base] = n + 1
            # vis: allow[VIS202] see above: deterministic alias store
            self._prim_names[key] = base if n == 0 else f"{base}#{n + 1}"
        return self._prim_names[key]

    def _proc_name(self, proc: Optional["Process"]) -> str:
        if proc is None:
            return "<no-process>"
        stage = self._stages.get(proc)
        if stage is not None:
            return stage.name
        if proc not in self._proc_names:
            self._proc_names[proc] = f"proc#{len(self._proc_names)}"
        return self._proc_names[proc]

    def _record(self, category: str, subject: str, message: str) -> None:
        key = (category, subject, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(Finding(category, subject, message))

    # -- hooks: blocking ----------------------------------------------
    def on_block(
        self,
        kind: str,
        primitive: object,
        event: "Event",
        proc: Optional["Process"] = None,
    ) -> None:
        """A wait on a tracked primitive did not complete immediately."""
        if proc is None:
            proc = self.env.active_process
        self._waits[event] = _Wait(kind, primitive, event, proc, self.env.now)
        event.callbacks.append(self._unblocked)

    def _unblocked(self, event: "Event") -> None:
        wait = self._waits.pop(event, None)
        if wait is None:
            return
        if wait.kind == "get":
            from repro.simcore.pipeline import SHUTDOWN

            if event._value is SHUTDOWN:
                self.on_shutdown(wait.primitive, wait.proc)

    # -- hooks: semaphores and barriers -------------------------------
    def on_sem_post(self, sem: "SimSemaphore") -> None:
        """Record who posts each semaphore (wait-for edge targets)."""
        proc = self.env.active_process
        if proc is not None:
            self._sem_posters.setdefault(sem, {})[proc] = None

    def on_barrier_party(self, barrier: "SimBarrier") -> None:
        """Record barrier membership as parties arrive."""
        proc = self.env.active_process
        if proc is not None:
            self._barrier_parties.setdefault(barrier, {})[proc] = None

    # -- hooks: bounded buffers ---------------------------------------
    def _buf(self, buffer: "BoundedBuffer") -> _BufState:
        state = self._buffers.get(buffer)
        if state is None:
            state = self._buffers[buffer] = _BufState()
        return state

    def on_producer(
        self, buffer: "BoundedBuffer", proc: Optional["Process"]
    ) -> None:
        """A process entered the producer side of a buffer."""
        if proc is not None:
            self._buf(buffer).producers[proc] = None

    def on_reserve_granted(
        self, buffer: "BoundedBuffer", proc: Optional["Process"]
    ) -> None:
        """A production credit was handed out (Appendix B semaphore A)."""
        state = self._buf(buffer)
        state.outstanding[proc] = state.outstanding.get(proc, 0) + 1

    def on_commit(
        self, buffer: "BoundedBuffer", proc: Optional["Process"]
    ) -> None:
        """An item was deposited (Appendix B semaphore B)."""
        state = self._buf(buffer)
        if proc is not None:
            state.producers[proc] = None
        if buffer.depth is None:
            return
        held = state.outstanding.get(proc, 0)
        if held <= 0:
            self._record(
                "protocol",
                f"buffer:{self._name(buffer)}",
                f"{self._proc_name(proc)} committed without a reserved "
                "slot (commit without reserve)",
            )
        else:
            state.outstanding[proc] = held - 1

    def on_release(
        self, buffer: "BoundedBuffer", proc: Optional["Process"]
    ) -> None:
        """An unused reserved slot was returned."""
        state = self._buf(buffer)
        if buffer.depth is None:
            return
        held = state.outstanding.get(proc, 0)
        if held <= 0:
            self._record(
                "protocol",
                f"buffer:{self._name(buffer)}",
                f"{self._proc_name(proc)} released a credit it never "
                "reserved",
            )
        else:
            state.outstanding[proc] = held - 1

    def on_get(
        self, buffer: "BoundedBuffer", proc: Optional["Process"]
    ) -> None:
        """A consumer asked for the next item."""
        state = self._buf(buffer)
        if proc is not None:
            state.consumers[proc] = None
            # vis: allow[VIS202] identity membership on live process
            # objects within one sanitized run; never logged/iterated.
            if id(proc) in state.shutdown_seen:
                self._record(
                    "protocol",
                    f"buffer:{self._name(buffer)}",
                    f"{self._proc_name(proc)} called get() again after "
                    "receiving SHUTDOWN (get after close)",
                )

    def on_delivered(self, buffer: "BoundedBuffer") -> None:
        """An item reached a consumer."""
        self._buf(buffer).delivered += 1

    def on_shutdown(
        self, buffer: "BoundedBuffer", proc: Optional["Process"]
    ) -> None:
        """SHUTDOWN was delivered to a consumer."""
        if proc is not None:
            self._buf(buffer).shutdown_seen.add(id(proc))  # vis: allow[VIS202]

    def on_task_done(
        self, buffer: "BoundedBuffer", proc: Optional["Process"]
    ) -> None:
        """A consumer finished an item under the ``on_done`` discipline."""
        state = self._buf(buffer)
        state.task_done += 1
        if state.task_done > state.delivered:
            self._record(
                "protocol",
                f"buffer:{self._name(buffer)}",
                f"{self._proc_name(proc)} called task_done() more times "
                "than items were consumed (task_done imbalance)",
            )

    # -- hooks: stages -------------------------------------------------
    def on_stage_start(self, stage: "Stage") -> None:
        """Bind a pipeline stage to its process; pre-register wiring."""
        proc = stage.process
        if proc is None:
            return
        self._stages[proc] = stage
        if stage.outbound is not None:
            self._buf(stage.outbound).producers[proc] = None
        if stage.inbound is not None:
            self._buf(stage.inbound).consumers[proc] = None

    # -- end-of-run analysis ------------------------------------------
    def on_exhausted(self) -> None:
        """The event queue ran dry: analyse everything still blocked."""
        self._end_checks()

    def _live_waits(self) -> List[_Wait]:
        """Blocked waits whose process is really still parked on them."""
        live = []
        for event, wait in self._waits.items():
            if event.triggered:
                continue
            proc = wait.proc
            if proc is not None and (
                proc.triggered or proc.target is not event
            ):
                # Interrupted, terminated, or moved on: not a real block.
                continue
            live.append(wait)
        return live

    def _is_daemon(self, proc: Optional["Process"]) -> bool:
        stage = self._stages.get(proc) if proc is not None else None
        return bool(stage is not None and stage.daemon)

    def _edges(
        self, waits: List[_Wait]
    ) -> Dict["Process", List["Process"]]:
        """Wait-for edges: blocked process -> who could unblock it."""
        edges: Dict["Process", List["Process"]] = {}
        blocked_on = {w.proc: w for w in waits if w.proc is not None}
        for wait in waits:
            proc = wait.proc
            if proc is None:
                continue
            targets: List["Process"] = []
            if wait.kind == "get":
                state = self._buf(wait.primitive)
                targets = [
                    p for p in state.producers if not p.triggered
                ]
            elif wait.kind == "reserve":
                state = self._buf(wait.primitive)
                targets = [
                    p for p in state.consumers if not p.triggered
                ]
            elif wait.kind == "sem":
                posters = self._sem_posters.get(wait.primitive, {})
                targets = [p for p in posters if not p.triggered]
            elif wait.kind == "barrier":
                # A party already parked at the same barrier cannot be
                # the one to complete the round; without this filter a
                # merely under-attended barrier would read as a cycle.
                parties = self._barrier_parties.get(wait.primitive, {})
                targets = [
                    p
                    for p in parties
                    if p is not proc
                    and not p.triggered
                    and not (
                        p in blocked_on
                        and blocked_on[p].kind == "barrier"
                        and blocked_on[p].primitive is wait.primitive
                    )
                ]
            edges[proc] = targets
        return edges

    def _cycles(
        self, edges: Dict["Process", List["Process"]]
    ) -> List[List["Process"]]:
        """Strongly connected components of size > 1 among blocked procs."""
        index: Dict["Process", int] = {}
        low: Dict["Process", int] = {}
        on_stack: Set["Process"] = set()
        stack: List["Process"] = []
        counter = [0]
        sccs: List[List["Process"]] = []

        def strongconnect(v: "Process") -> None:
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            for w in edges.get(v, ()):
                if w not in edges:
                    continue  # not blocked: can still make progress
                if w not in index:
                    strongconnect(w)
                    low[v] = min(low[v], low[w])
                elif w in on_stack:
                    low[v] = min(low[v], index[w])
            if low[v] == index[v]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w is v:
                        break
                if len(component) > 1:
                    sccs.append(list(reversed(component)))

        for v in list(edges):
            if v not in index:
                strongconnect(v)
        return sccs

    def _end_checks(self) -> None:
        waits = self._live_waits()
        edges = self._edges(waits)
        deadlocked: Set["Process"] = set()
        for cycle in self._cycles(edges):
            deadlocked.update(cycle)
            names = [self._proc_name(p) for p in cycle]
            self._record(
                "deadlock",
                "cycle:" + "->".join(names),
                "wait-for cycle among blocked processes: "
                + " -> ".join(names + [names[0]]),
            )

        sem_hangs: Dict[object, List[_Wait]] = {}
        barrier_hangs: Dict[object, List[_Wait]] = {}
        for wait in waits:
            if wait.proc in deadlocked:
                continue
            if wait.kind == "sem":
                sem_hangs.setdefault(wait.primitive, []).append(wait)
            elif wait.kind == "barrier":
                barrier_hangs.setdefault(wait.primitive, []).append(wait)
            elif not self._is_daemon(wait.proc):
                self._hang_finding(wait)

        for sem, blocked in sem_hangs.items():
            names = ",".join(self._proc_name(w.proc) for w in blocked)
            self._record(
                "lost-wakeup",
                f"semaphore:{self._name(sem)}",
                f"{len(blocked)} waiter(s) still blocked at sim end "
                f"({names}): a post was dropped or never issued",
            )
        for barrier, blocked in barrier_hangs.items():
            parties = getattr(barrier, "parties", "?")
            self._record(
                "barrier-stuck",
                f"barrier:{self._name(barrier)}",
                f"{len(blocked)} of {parties} parties arrived; the "
                "round never completed",
            )

        self._leak_checks()

    def _hang_finding(self, wait: _Wait) -> None:
        buffer = wait.primitive
        state = self._buf(buffer)
        who = self._proc_name(wait.proc)
        if wait.kind == "get":
            alive = [p for p in state.producers if not p.triggered]
            if alive:
                detail = (
                    "producers "
                    + ",".join(self._proc_name(p) for p in alive)
                    + " are still alive but blocked"
                )
            elif getattr(buffer, "closed", False):
                detail = "buffer closed but SHUTDOWN never reached it"
            else:
                detail = (
                    "all producers terminated without closing the buffer"
                )
            self._record(
                "hang",
                f"buffer:{self._name(buffer)}",
                f"{who} blocked in get() at event exhaustion; {detail}",
            )
        else:  # reserve
            self._record(
                "hang",
                f"buffer:{self._name(buffer)}",
                f"{who} blocked reserving a slot at event exhaustion; "
                "no consumer will free a credit",
            )

    def _leak_checks(self) -> None:
        for buffer, state in self._buffers.items():
            if buffer.depth is not None:
                for proc, held in state.outstanding.items():
                    if held > 0 and (proc is None or proc.triggered):
                        self._record(
                            "credit-leak",
                            f"buffer:{self._name(buffer)}",
                            f"{self._proc_name(proc)} terminated holding "
                            f"{held} reserved slot(s) it never committed "
                            "(reserve without commit)",
                        )
            if (
                buffer.depth is not None
                and buffer.release == "on_done"
                and state.task_done < state.delivered
            ):
                self._record(
                    "protocol",
                    f"buffer:{self._name(buffer)}",
                    f"{state.delivered - state.task_done} consumed "
                    "item(s) never acknowledged with task_done() "
                    "(task_done imbalance)",
                )

    # -- reporting -----------------------------------------------------
    def report(self) -> SanitizerReport:
        """Run the end-of-run checks and return the structured report.

        Also emits ``SAN_*`` NetLogger events when a logger is
        attached. Safe to call more than once (findings de-duplicate).
        """
        self._end_checks()
        result = SanitizerReport(findings=list(self.findings))
        result.emit(self.logger)
        return result


def attach_sanitizer(
    env: "Environment", *, logger: Optional["NetLogger"] = None
) -> SimSanitizer:
    """Create a :class:`SimSanitizer` and install it on ``env``."""
    return SimSanitizer(env, logger=logger).install()
