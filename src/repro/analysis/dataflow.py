"""Determinism flow analysis: the VIS20x rule group of ``visapult check``.

The whole reproduction rests on bitwise-reproducible seeded simulation,
so values whose *content or order* differs run to run must never reach
a loop, a name, a seed or a NetLogger field.  The PR 2 linter catches
syntactic escapes (``time`` imports in sim code); this pass tracks the
values themselves through assignments and function returns within a
module -- a worklist dataflow over a per-module def-use graph, not a
pattern match.

Taint kinds
    ``set-order``
        values with nondeterministic iteration order: ``set`` /
        ``frozenset`` displays, comprehensions and constructors, set
        algebra, ``os.listdir`` / ``glob.glob``.  ``sorted()`` and
        order-insensitive reducers (``len``/``min``/``max``/``sum``/
        ``any``/``all``) launder it; ``list()`` / ``tuple()`` do not.
    ``id-value``
        CPython identities: ``id()`` and ``hash()`` results (default
        ``object.__hash__`` *is* the identity, and str hashes are
        salted per process).
    ``wall-clock``
        ``time.time()`` / ``perf_counter()`` / ``datetime.now()``
        results.

Rules
    ``VIS201``
        a ``set-order`` value feeds a ``for`` loop, comprehension,
        ``enumerate``/``zip``/``map``, ``str.join`` or a NetLogger
        ``.log(...)`` call.
    ``VIS202``
        an ``id-value`` flows into a string format, an explicit
        ``name=``/``seed=``/``label=``/``key=`` argument, an RNG seed,
        a ``.log(...)`` field, or identity-keyed container state
        (``.add``, dict keys, subscript stores, ``in`` tests).
    ``VIS203``
        an unseeded RNG: ``random.Random()`` with no seed, the
        module-global ``random.*`` functions, ``numpy.random.*``
        module-global functions, ``default_rng()`` with no seed.
    ``VIS204``
        a ``wall-clock`` value flows into a seed or an explicit
        ``name=`` argument (wall-clock escaping into identity).

Proven-safe sinks are suppressed in place with an allowlist pragma
(``# vis: allow[VIS202] reason``); see
:mod:`~repro.analysis.staticbase`.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.staticbase import CheckFinding, ParsedModule

SET_ORDER = "set-order"
ID_VALUE = "id-value"
WALL_CLOCK = "wall-clock"

Taints = FrozenSet[str]
_EMPTY: Taints = frozenset()

#: canonical dotted callables producing wall-clock readings
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: canonical dotted callables producing set-ordered sequences
_SET_ORDER_CALLS = frozenset(
    {"set", "frozenset", "os.listdir", "os.scandir", "glob.glob",
     "glob.iglob"}
)

#: set-algebra methods whose result iterates in set order
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)

#: builtins that consume an iterable order-insensitively
_ORDER_INSENSITIVE = frozenset(
    {"len", "min", "max", "sum", "any", "all", "sorted", "frozenset",
     "set"}
)

#: builtins whose result preserves the argument's iteration order
_ORDER_PRESERVING = frozenset({"list", "tuple", "iter", "reversed"})

#: ``random`` module-level functions that use the global unseeded RNG
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random", "randint", "randrange", "getrandbits", "choice",
        "choices", "shuffle", "sample", "uniform", "triangular",
        "betavariate", "expovariate", "gammavariate", "gauss",
        "lognormvariate", "normalvariate", "vonmisesvariate",
        "paretovariate", "weibullvariate", "randbytes",
    }
)

#: ``numpy.random`` module-level functions bound to the global state
_NP_GLOBAL_FNS = frozenset(
    {
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "normal",
        "uniform", "standard_normal", "exponential", "poisson", "seed",
        "bytes",
    }
)

#: keyword names that denote identity/seed sinks
_SINK_KWARGS = frozenset({"name", "seed", "label", "key"})


def _pretty(node: ast.AST) -> str:
    """A short source rendering of ``node`` for finding messages."""
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failure
        return "<expr>"
    return text if len(text) <= 40 else text[:37] + "..."


class _Scope:
    """One lexical scope's def-use environment (name -> taints)."""

    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.env: Dict[str, Taints] = {}

    def lookup(self, name: str) -> Taints:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.env:
                return scope.env[name]
            scope = scope.parent
        return _EMPTY

    def bind(self, name: str, taints: Taints) -> bool:
        """Union ``taints`` into ``name``; True if the binding grew."""
        old = self.env.get(name, _EMPTY)
        new = old | taints
        if new != old:
            self.env[name] = new
            return True
        return False


class _FunctionUnit:
    """One function/method body to analyze, with its scope chain."""

    def __init__(
        self,
        node: ast.AST,
        qualname: str,
        class_name: Optional[str],
        scope: _Scope,
    ):
        self.node = node
        self.qualname = qualname
        self.class_name = class_name
        self.scope = scope


class ModuleDataflow:
    """Per-module taint propagation to fixpoint, then sink detection."""

    def __init__(self, module: ParsedModule):
        self.module = module
        #: import alias -> canonical dotted module/name
        self.aliases: Dict[str, str] = {}
        #: function qualname -> return-value taints (the summaries)
        self.summaries: Dict[str, Taints] = {}
        #: class name -> {attr name -> taints} (``self.attr`` state)
        self.class_attrs: Dict[str, Dict[str, Taints]] = {}
        self.module_scope = _Scope()
        self.units: List[_FunctionUnit] = []
        self._findings: Set[CheckFinding] = set()
        self._collect()

    # -- structure collection -----------------------------------------
    def _collect(self) -> None:
        for node in ast.walk(self.module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                        if alias.asname
                        else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        self._collect_functions(
            self.module.tree.body, self.module_scope, None, ""
        )

    def _collect_functions(
        self,
        body: List[ast.stmt],
        scope: _Scope,
        class_name: Optional[str],
        prefix: str,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{stmt.name}"
                unit = _FunctionUnit(
                    stmt, qual, class_name, _Scope(parent=scope)
                )
                self.units.append(unit)
                self.summaries.setdefault(qual, _EMPTY)
                self._collect_functions(
                    stmt.body, unit.scope, None, f"{qual}.<locals>."
                )
            elif isinstance(stmt, ast.ClassDef):
                self.class_attrs.setdefault(stmt.name, {})
                self._collect_functions(
                    stmt.body, scope, stmt.name, f"{stmt.name}."
                )
            else:
                for nested in self._nested_bodies(stmt):
                    self._collect_functions(
                        nested, scope, class_name, prefix
                    )

    @staticmethod
    def _nested_bodies(stmt: ast.stmt) -> List[List[ast.stmt]]:
        """Statement lists nested in one compound statement."""
        bodies: List[List[ast.stmt]] = []
        for field in ("body", "orelse", "finalbody"):
            nested = getattr(stmt, field, None)
            if isinstance(nested, list) and nested and isinstance(
                nested[0], ast.stmt
            ):
                bodies.append(nested)
        for handler in getattr(stmt, "handlers", []) or []:
            bodies.append(handler.body)
        return bodies

    # -- canonical names ----------------------------------------------
    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """Resolve an attribute chain to a canonical dotted name."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(self.aliases.get(node.id, node.id))
            return ".".join(reversed(parts))
        return None

    # -- fixpoint driver ----------------------------------------------
    def analyze(self) -> List[CheckFinding]:
        """Propagate taints to fixpoint, then report sink violations."""
        for _ in range(20):
            changed = self._propagate_module_level()
            for unit in self.units:
                changed |= self._propagate_function(unit)
            if not changed:
                break
        sink = _SinkVisitor(self, self.module_scope, None)
        for stmt in self.module.tree.body:
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                sink.visit(stmt)
        for unit in self.units:
            unit_sink = _SinkVisitor(self, unit.scope, unit.class_name)
            for stmt in unit.node.body:  # type: ignore[attr-defined]
                unit_sink.visit(stmt)
        findings = sorted(
            self._findings, key=lambda f: (f.line, f.col, f.code, f.message)
        )
        return findings

    def _propagate_module_level(self) -> bool:
        walker = _BindVisitor(self, self.module_scope, None)
        for stmt in self.module.tree.body:
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                walker.visit(stmt)
        return walker.changed

    def _propagate_function(self, unit: _FunctionUnit) -> bool:
        walker = _BindVisitor(self, unit.scope, unit.class_name)
        for stmt in unit.node.body:  # type: ignore[attr-defined]
            walker.visit(stmt)
        changed = walker.changed
        # Return summary: union over every ``return expr``.
        ret = _EMPTY
        for node in ast.walk(unit.node):
            if isinstance(node, ast.Return) and node.value is not None:
                ret |= self.eval_taints(
                    node.value, unit.scope, unit.class_name
                )
        if ret != self.summaries.get(unit.qualname, _EMPTY):
            self.summaries[unit.qualname] = (
                self.summaries.get(unit.qualname, _EMPTY) | ret
            )
            changed = True
        return changed

    # -- expression taint evaluation ----------------------------------
    def eval_taints(
        self, node: ast.AST, scope: _Scope, class_name: Optional[str]
    ) -> Taints:
        """The taint set of one expression under ``scope``."""
        if isinstance(node, ast.Name):
            return scope.lookup(node.id)
        if isinstance(node, (ast.Set, ast.SetComp)):
            return frozenset({SET_ORDER})
        if isinstance(node, ast.Call):
            return self._eval_call(node, scope, class_name)
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and class_name is not None
            ):
                return self.class_attrs.get(class_name, {}).get(
                    node.attr, _EMPTY
                )
            return self.eval_taints(node.value, scope, class_name)
        if isinstance(node, ast.BinOp):
            return self.eval_taints(
                node.left, scope, class_name
            ) | self.eval_taints(node.right, scope, class_name)
        if isinstance(node, ast.BoolOp):
            out = _EMPTY
            for value in node.values:
                out |= self.eval_taints(value, scope, class_name)
            return out
        if isinstance(node, ast.IfExp):
            return self.eval_taints(
                node.body, scope, class_name
            ) | self.eval_taints(node.orelse, scope, class_name)
        if isinstance(node, (ast.Tuple, ast.List)):
            out = _EMPTY
            for elt in node.elts:
                out |= self.eval_taints(elt, scope, class_name)
            return out
        if isinstance(node, ast.Dict):
            out = _EMPTY
            for key in node.keys:
                if key is not None:
                    out |= self.eval_taints(key, scope, class_name)
            for value in node.values:
                out |= self.eval_taints(value, scope, class_name)
            return out
        if isinstance(node, ast.JoinedStr):
            out = _EMPTY
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self.eval_taints(value.value, scope, class_name)
            return out
        if isinstance(node, ast.FormattedValue):
            return self.eval_taints(node.value, scope, class_name)
        if isinstance(node, ast.Subscript):
            return self.eval_taints(node.value, scope, class_name)
        if isinstance(node, ast.Starred):
            return self.eval_taints(node.value, scope, class_name)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.eval_taints(
                node.value, scope, class_name
            )
        if isinstance(node, ast.Yield):
            return (
                self.eval_taints(node.value, scope, class_name)
                if node.value is not None
                else _EMPTY
            )
        if isinstance(node, ast.NamedExpr):
            return self.eval_taints(node.value, scope, class_name)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            # Elements of a set lose the *order* taint but keep value
            # taints; the iteration itself is the sink (VIS201).
            return (
                self.eval_taints(node.elt, scope, class_name) - {SET_ORDER}
            )
        if isinstance(node, ast.DictComp):
            return (
                self.eval_taints(node.key, scope, class_name)
                | self.eval_taints(node.value, scope, class_name)
            ) - {SET_ORDER}
        return _EMPTY

    def _eval_call(
        self, node: ast.Call, scope: _Scope, class_name: Optional[str]
    ) -> Taints:
        args = _EMPTY
        for arg in node.args:
            args |= self.eval_taints(arg, scope, class_name)
        for kw in node.keywords:
            args |= self.eval_taints(kw.value, scope, class_name)
        dotted = self.dotted_name(node.func)
        if dotted is not None:
            if dotted in ("id", "hash"):
                return frozenset({ID_VALUE}) | args
            if dotted in _WALL_CLOCK_CALLS:
                return frozenset({WALL_CLOCK})
            if dotted in _SET_ORDER_CALLS:
                return frozenset({SET_ORDER}) | (args - {SET_ORDER})
            if dotted in _ORDER_INSENSITIVE:
                return args - {SET_ORDER}
            if dotted in _ORDER_PRESERVING:
                return args
            if dotted == "str":
                return args
        # Local function/method summaries: the interprocedural edge.
        summary = self._call_summary(node, class_name)
        if summary is not None:
            return summary | (args & {ID_VALUE, WALL_CLOCK})
        if isinstance(node.func, ast.Attribute):
            recv = self.eval_taints(node.func.value, scope, class_name)
            if node.func.attr in _SET_METHODS and SET_ORDER in recv:
                return frozenset({SET_ORDER}) | (args - {SET_ORDER})
            if node.func.attr == "copy":
                return recv
            # Unknown method on a tainted receiver: value taints
            # survive, order rarely does.
            return (recv | args) - {SET_ORDER}
        # Unknown call: value taints flow through, order does not.
        return args - {SET_ORDER}

    def _call_summary(
        self, node: ast.Call, class_name: Optional[str]
    ) -> Optional[Taints]:
        func = node.func
        if isinstance(func, ast.Name):
            qual = func.id
            if qual in self.summaries:
                return self.summaries[qual]
            return None
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and class_name is not None
        ):
            return self.summaries.get(f"{class_name}.{func.attr}")
        return None


class _BindVisitor(ast.NodeVisitor):
    """One propagation sweep: fold assignments into the scope env."""

    def __init__(
        self,
        flow: ModuleDataflow,
        scope: _Scope,
        class_name: Optional[str],
    ):
        self.flow = flow
        self.scope = scope
        self.class_name = class_name
        self.changed = False

    # Nested defs have their own units; don't descend.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return

    def _bind_target(self, target: ast.AST, taints: Taints) -> None:
        if isinstance(target, ast.Name):
            self.changed |= self.scope.bind(target.id, taints)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, taints)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, taints)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self.class_name is not None
        ):
            attrs = self.flow.class_attrs.setdefault(self.class_name, {})
            old = attrs.get(target.attr, _EMPTY)
            new = old | taints
            if new != old:
                attrs[target.attr] = new
                self.changed = True

    def _eval(self, node: ast.AST) -> Taints:
        return self.flow.eval_taints(node, self.scope, self.class_name)

    def visit_Assign(self, node: ast.Assign) -> None:
        taints = self._eval(node.value)
        for target in node.targets:
            self._bind_target(target, taints)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._bind_target(node.target, self._eval(node.value))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._bind_target(node.target, self._eval(node.value))
        self.generic_visit(node)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        self._bind_target(node.target, self._eval(node.value))
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        # Loop variables carry the element taints; iterating is the
        # sink (checked separately), the elements shed the order taint.
        self._bind_target(node.target, self._eval(node.iter) - {SET_ORDER})
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if item.optional_vars is not None:
                self._bind_target(
                    item.optional_vars, self._eval(item.context_expr)
                )
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._bind_target(node.target, self._eval(node.iter) - {SET_ORDER})
        self.generic_visit(node)


class _SinkVisitor(ast.NodeVisitor):
    """Post-fixpoint sweep reporting tainted values reaching sinks."""

    def __init__(
        self,
        flow: ModuleDataflow,
        scope: _Scope,
        class_name: Optional[str],
    ):
        self.flow = flow
        self.scope = scope
        self.class_name = class_name
        self.module = flow.module

    def _eval(self, node: ast.AST) -> Taints:
        return self.flow.eval_taints(node, self.scope, self.class_name)

    def _report(
        self, node: ast.AST, code: str, message: str
    ) -> None:
        self.flow._findings.add(
            CheckFinding(
                path=self.module.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0) + 1,
                code=code,
                message=message,
            )
        )

    # Nested defs are visited through their own units.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return

    # -- VIS201: iteration-order sinks --------------------------------
    def _check_iter(self, iter_node: ast.AST) -> None:
        if not self.module.determinism_scoped:
            return
        if SET_ORDER in self._eval(iter_node):
            self._report(
                iter_node,
                "VIS201",
                f"iteration over set-ordered value "
                f"`{_pretty(iter_node)}`; order is nondeterministic -- "
                "sort it or use a stable unique sequence",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node: ast.AST) -> None:
        for gen in node.generators:  # type: ignore[attr-defined]
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_GeneratorExp = _visit_comp
    visit_DictComp = _visit_comp

    # -- VIS202: id-value format sinks --------------------------------
    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        for value in node.values:
            if not isinstance(value, ast.FormattedValue):
                continue
            taints = self._eval(value.value)
            if ID_VALUE in taints:
                self._report(
                    node,
                    "VIS202",
                    f"id()/hash() value `{_pretty(value.value)}` "
                    "formatted into a string; derived names/labels "
                    "differ run to run",
                )
            elif WALL_CLOCK in taints and self.module.determinism_scoped:
                self._report(
                    node,
                    "VIS204",
                    f"wall-clock value `{_pretty(value.value)}` "
                    "formatted into a string in deterministic code",
                )
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.Mod) and ID_VALUE in self._eval(
            node.right
        ):
            self._report(
                node,
                "VIS202",
                "id()/hash() value %-formatted into a string; derived "
                "names/labels differ run to run",
            )
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.In, ast.NotIn)) for op in node.ops):
            if ID_VALUE in self._eval(node.left):
                self._report(
                    node,
                    "VIS202",
                    f"membership test on id()/hash() value "
                    f"`{_pretty(node.left)}`; identity-keyed state is "
                    "not reproducible across runs",
                )
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript) and ID_VALUE in self._eval(
                target.slice
            ):
                self._report(
                    target,
                    "VIS202",
                    f"id()/hash() value `{_pretty(target.slice)}` used "
                    "as a container key; identity-keyed state is not "
                    "reproducible across runs",
                )
        self.generic_visit(node)

    # -- call sinks ----------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.flow.dotted_name(node.func)
        self._check_unseeded_rng(node, dotted)
        self._check_call_sinks(node, dotted)
        self.generic_visit(node)

    def _check_call_sinks(
        self, node: ast.Call, dotted: Optional[str]
    ) -> None:
        attr = (
            node.func.attr if isinstance(node.func, ast.Attribute) else None
        )
        # Seeding an RNG from identity or the clock.
        is_seeding = (
            dotted in ("random.Random", "numpy.random.default_rng")
            or attr == "seed"
        )
        if is_seeding:
            for arg in node.args:
                taints = self._eval(arg)
                if ID_VALUE in taints:
                    self._report(
                        arg,
                        "VIS202",
                        f"RNG seeded from id()/hash() value "
                        f"`{_pretty(arg)}`; seeds must be deterministic",
                    )
                if WALL_CLOCK in taints:
                    self._report(
                        arg,
                        "VIS204",
                        f"RNG seeded from wall-clock value "
                        f"`{_pretty(arg)}`; seeds must be deterministic",
                    )
        # Explicit identity keywords anywhere.
        for kw in node.keywords:
            if kw.arg is None or kw.arg not in _SINK_KWARGS:
                continue
            taints = self._eval(kw.value)
            if ID_VALUE in taints:
                self._report(
                    kw.value,
                    "VIS202",
                    f"id()/hash() value `{_pretty(kw.value)}` passed as "
                    f"{kw.arg}=; derived identities differ run to run",
                )
            if WALL_CLOCK in taints:
                self._report(
                    kw.value,
                    "VIS204",
                    f"wall-clock value `{_pretty(kw.value)}` passed as "
                    f"{kw.arg}=; derived identities differ run to run",
                )
        # NetLogger emits: every field must be reproducible.
        if attr == "log":
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                taints = self._eval(arg)
                if SET_ORDER in taints and self.module.determinism_scoped:
                    self._report(
                        arg,
                        "VIS201",
                        f"set-ordered value `{_pretty(arg)}` passed to a "
                        ".log(...) emit; event fields must serialize "
                        "deterministically",
                    )
                if ID_VALUE in taints:
                    self._report(
                        arg,
                        "VIS202",
                        f"id()/hash() value `{_pretty(arg)}` passed to a "
                        ".log(...) emit; log fields differ run to run",
                    )
        # Identity flowing into container state.
        if attr == "add" and node.args:
            if ID_VALUE in self._eval(node.args[0]):
                self._report(
                    node.args[0],
                    "VIS202",
                    f"id()/hash() value `{_pretty(node.args[0])}` added "
                    "to a container; identity-keyed state is not "
                    "reproducible across runs",
                )
        # Order-sensitive consumers of set-ordered iterables.
        if self.module.determinism_scoped:
            if dotted in ("enumerate", "zip", "map") or attr == "join":
                check_args = (
                    node.args[1:] if dotted == "map" else node.args
                )
                for arg in check_args:
                    if SET_ORDER in self._eval(arg):
                        self._report(
                            arg,
                            "VIS201",
                            f"set-ordered value `{_pretty(arg)}` consumed "
                            f"in iteration order by "
                            f"{attr or dotted}(); sort it first",
                        )

    # -- VIS203: unseeded RNGs ----------------------------------------
    def _check_unseeded_rng(
        self, node: ast.Call, dotted: Optional[str]
    ) -> None:
        if not self.module.determinism_scoped or dotted is None:
            return
        no_args = not node.args and not node.keywords
        none_arg = (
            len(node.args) == 1
            and not node.keywords
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value is None
        )
        if dotted == "random.Random" and (no_args or none_arg):
            self._report(
                node,
                "VIS203",
                "random.Random() constructed without a seed; pass a "
                "deterministic seed",
            )
        elif dotted in (
            "numpy.random.default_rng",
            "numpy.random.Generator.default_rng",
        ) and (no_args or none_arg):
            self._report(
                node,
                "VIS203",
                "default_rng() constructed without a seed; pass a "
                "deterministic seed",
            )
        elif dotted == "numpy.random.SeedSequence" and no_args:
            self._report(
                node,
                "VIS203",
                "SeedSequence() constructed without entropy; pass a "
                "deterministic seed",
            )
        elif dotted.startswith("random.") and dotted.split(".", 1)[1] in (
            _GLOBAL_RANDOM_FNS
        ):
            self._report(
                node,
                "VIS203",
                f"{dotted}() draws from the process-global RNG; use a "
                "seeded random.Random / numpy Generator instance",
            )
        elif dotted.startswith("numpy.random.") and dotted.rsplit(
            ".", 1
        )[1] in _NP_GLOBAL_FNS:
            self._report(
                node,
                "VIS203",
                f"{dotted}() uses numpy's global RNG state; use a "
                "seeded Generator from repro.util.rng",
            )


def analyze_module(module: ParsedModule) -> List[CheckFinding]:
    """Run the determinism dataflow rules over one parsed module."""
    return ModuleDataflow(module).analyze()
