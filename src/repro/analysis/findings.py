"""Finding records shared by the sanitizers and the project linter.

Every detector reduces to a :class:`Finding`: a category (one per
Appendix-B failure mode), the subject it implicates (a buffer,
semaphore, stage, lock pair or source location) and a human-readable
message. A :class:`SanitizerReport` bundles the findings of one run
and knows how to emit them as NetLogger ``SAN_*`` events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.netlogger.events import Tags

if TYPE_CHECKING:  # pragma: no cover
    from repro.netlogger.logger import NetLogger

#: finding category -> the NetLogger tag reporting it
CATEGORY_TAGS: Dict[str, str] = {
    "deadlock": Tags.SAN_DEADLOCK,
    "hang": Tags.SAN_HANG,
    "credit-leak": Tags.SAN_CREDIT_LEAK,
    "protocol": Tags.SAN_PROTOCOL,
    "lost-wakeup": Tags.SAN_LOST_WAKEUP,
    "barrier-stuck": Tags.SAN_BARRIER_STUCK,
    "lock-order": Tags.SAN_LOCK_ORDER,
}


@dataclass(frozen=True)
class Finding:
    """One defect a sanitizer or the linter believes it has found."""

    category: str
    subject: str
    message: str

    def __post_init__(self) -> None:
        if self.category not in CATEGORY_TAGS:
            raise ValueError(
                f"unknown finding category {self.category!r}; expected "
                f"one of {sorted(CATEGORY_TAGS)}"
            )

    @property
    def tag(self) -> str:
        """The NetLogger tag for this finding's category."""
        return CATEGORY_TAGS[self.category]

    def __str__(self) -> str:
        return f"[{self.category}] {self.subject}: {self.message}"


@dataclass
class SanitizerReport:
    """The structured end-of-run report of one sanitized run."""

    findings: List[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the run produced no findings."""
        return not self.findings

    def categories(self) -> Tuple[str, ...]:
        """Sorted, de-duplicated categories present in the report."""
        return tuple(sorted({f.category for f in self.findings}))

    def by_category(self, category: str) -> List[Finding]:
        """Findings of one category, in detection order."""
        return [f for f in self.findings if f.category == category]

    def emit(self, logger: Optional["NetLogger"]) -> None:
        """Log one ``SAN_*`` event per finding plus a ``SAN_REPORT``.

        ULM values may not contain whitespace, so only the category
        and subject travel on the event; the full message lives in the
        in-memory report.
        """
        if logger is None:
            return
        for finding in self.findings:
            logger.log(
                finding.tag,
                level="Error",
                category=finding.category,
                subject=finding.subject.replace(" ", "_"),
            )
        logger.log(Tags.SAN_REPORT, level="Usage", findings=len(self.findings))

    def summary(self) -> str:
        """A human-readable block, one line per finding."""
        if not self.findings:
            return "sanitizer: clean (0 findings)"
        lines = [f"sanitizer: {len(self.findings)} finding(s)"]
        lines.extend(f"  {finding}" for finding in self.findings)
        return "\n".join(lines)
