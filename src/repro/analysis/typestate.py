"""Protocol typestate checks: the VIS21x rule group of ``visapult check``.

The pipeline's correctness rests on a handful of object protocols that
runtime sanitizers can only catch when a fuzz run happens to exercise
the broken path.  This pass proves the pairing statically:

``VIS210`` (reserve/commit pairing)
    Every scope that calls ``<buffer>.reserve()`` must also discharge
    the credit on that buffer -- ``commit(...)``, ``cancel()`` or
    ``release_credit()`` -- and vice versa.  Split-phase protocols are
    honoured: the *scope* is the enclosing class (or the module's
    free functions), so a stage that reserves in ``_run`` and commits
    in ``_emit`` is balanced.
``VIS211`` (render-cache claim lifecycle)
    Every ``<cache>.begin(...)`` claim must have a ``publish(...)``
    *and* an ``abandon(...)`` reachable on the same cache within the
    scope -- a lead claim has exactly two legal exits, and losing the
    abandon leg is how degraded slabs leak into the cache.
``VIS212`` (connection open/close balance)
    A locally-bound connection (``socket.socket(...)``,
    ``create_connection(...)``, ``.accept(...)``, bare ``open(...)``)
    must be closed in scope, enter a ``with`` block, or escape (be
    returned, stored, or passed on); otherwise it leaks on every path.
``VIS213`` (exhaustive MsgType dispatch)
    Every ``MsgType`` enum member must have a decoder branch in the
    protocol registry (``_TYPE_OF``); a new tile/heavy/control message
    without one becomes a static finding, not a runtime fuzz catch.
    Payload-less control frames are allowlisted at the member line
    (``# vis: allow[VIS213]``).

Receivers are normalized through local aliases (``cache =
self.render_cache`` makes ``cache.begin`` and
``self.render_cache.publish`` the same receiver), so the split-phase
acquire/finish legs in the back end check as one protocol.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.staticbase import CheckFinding, ParsedModule

#: method name -> (protocol kind, role); role "source" opens an
#: obligation, the listed discharge names close it
_RESERVE_SOURCES = frozenset({"reserve"})
_RESERVE_DISCHARGES = frozenset({"commit", "cancel", "release_credit"})
_CLAIM_SOURCES = frozenset({"begin"})
_CLAIM_DISCHARGES = frozenset({"publish", "abandon"})

#: connection-opening callables (dotted) and method names
_CONN_OPEN_DOTTED = frozenset(
    {
        "socket.socket",
        "socket.create_connection",
        "socket.create_server",
        "open",
    }
)
_CONN_OPEN_METHODS = frozenset({"accept"})
_CONN_CLOSE_METHODS = frozenset({"close", "shutdown", "stop"})


@dataclass
class _Site:
    """One protocol call site."""

    node: ast.AST
    receiver: str
    method: str


@dataclass
class _ScopeUse:
    """Protocol call sites collected over one class/module scope."""

    name: str
    reserve_sources: List[_Site] = field(default_factory=list)
    reserve_discharges: List[_Site] = field(default_factory=list)
    claim_sources: List[_Site] = field(default_factory=list)
    claim_discharges: List[_Site] = field(default_factory=list)


def _receiver_text(node: ast.AST, aliases: Dict[str, str]) -> str:
    """Canonical receiver spelling with local aliases resolved."""
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failure
        return "<recv>"
    head, sep, rest = text.partition(".")
    resolved = aliases.get(head)
    if resolved is not None:
        return f"{resolved}{sep}{rest}" if sep else resolved
    return text


def _local_aliases(fn: ast.AST) -> Dict[str, str]:
    """Map local names to the ``self.attr`` chains they alias.

    Only simple, unconditional ``name = self.attr[...attr]`` bindings
    are tracked -- enough to see through the ``cache =
    self.render_cache`` convention without real pointer analysis.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(fn):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not fn:
                continue
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = node.value
        parts: List[str] = []
        while isinstance(value, ast.Attribute):
            parts.append(value.attr)
            value = value.value
        if isinstance(value, ast.Name) and value.id == "self" and parts:
            aliases[target.id] = ".".join(["self"] + list(reversed(parts)))
    return aliases


class _ProtocolCollector(ast.NodeVisitor):
    """Collect buffer/cache protocol call sites within one scope."""

    def __init__(self, scope: _ScopeUse, aliases: Dict[str, str]):
        self.scope = scope
        self.aliases = aliases

    # Nested functions are collected as scope members of their own;
    # descending here would double-count their call sites.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            recv = _receiver_text(func.value, self.aliases)
            site = _Site(node=node, receiver=recv, method=func.attr)
            # The primitive's own implementation *is* the protocol;
            # plain ``self`` receivers are exempt.  An argument-taking
            # ``reserve(cost, ...)`` is a different API (the admission
            # token bucket), not the buffer credit handshake.
            if recv != "self":
                if (
                    func.attr in _RESERVE_SOURCES
                    and not node.args
                    and not node.keywords
                ):
                    self.scope.reserve_sources.append(site)
                elif func.attr in _RESERVE_DISCHARGES:
                    self.scope.reserve_discharges.append(site)
                elif func.attr in _CLAIM_SOURCES:
                    self.scope.claim_sources.append(site)
                elif func.attr in _CLAIM_DISCHARGES:
                    self.scope.claim_discharges.append(site)
        self.generic_visit(node)


def _check_pairing(
    module: ParsedModule,
    scope: _ScopeUse,
    sources: List[_Site],
    discharges: List[_Site],
    code: str,
    open_what: str,
    close_what: str,
    *,
    require_all: Sequence[str] = (),
) -> List[CheckFinding]:
    """Unmatched source/discharge findings for one protocol kind."""
    findings: List[CheckFinding] = []
    discharged = {s.receiver for s in discharges}
    discharge_methods: Dict[str, Set[str]] = {}
    for site in discharges:
        discharge_methods.setdefault(site.receiver, set()).add(site.method)
    opened = {s.receiver for s in sources}
    for site in sources:
        if site.receiver not in discharged:
            findings.append(
                CheckFinding(
                    path=module.path,
                    line=site.node.lineno,
                    col=site.node.col_offset + 1,
                    code=code,
                    message=(
                        f"{site.receiver}.{site.method}() opens "
                        f"{open_what} but {scope.name} never calls "
                        f"{close_what} on it"
                    ),
                )
            )
        elif require_all:
            missing = sorted(
                set(require_all) - discharge_methods[site.receiver]
            )
            if missing:
                findings.append(
                    CheckFinding(
                        path=module.path,
                        line=site.node.lineno,
                        col=site.node.col_offset + 1,
                        code=code,
                        message=(
                            f"{site.receiver}.{site.method}() opens "
                            f"{open_what} but {scope.name} has no "
                            f"{'/'.join(missing)} leg for it"
                        ),
                    )
                )
    for site in discharges:
        if site.receiver not in opened:
            findings.append(
                CheckFinding(
                    path=module.path,
                    line=site.node.lineno,
                    col=site.node.col_offset + 1,
                    code=code,
                    message=(
                        f"{site.receiver}.{site.method}() discharges "
                        f"{open_what} that {scope.name} never opens"
                    ),
                )
            )
    return findings


def _scope_functions(
    module: ParsedModule,
) -> List[Tuple[str, List[ast.AST]]]:
    """(scope name, function nodes) pairs: one per class, one for the
    module's free functions."""
    scopes: List[Tuple[str, List[ast.AST]]] = []
    free: List[ast.AST] = []

    def _walk(body: List[ast.stmt], into_free: bool) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if into_free:
                    free.append(stmt)
                _walk(stmt.body, into_free)
            elif isinstance(stmt, ast.ClassDef):
                methods = [
                    s
                    for s in ast.walk(stmt)
                    if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
                ]
                scopes.append((f"class {stmt.name}", methods))
            else:
                for fld in ("body", "orelse", "finalbody"):
                    nested = getattr(stmt, fld, None)
                    if isinstance(nested, list):
                        _walk(
                            [s for s in nested if isinstance(s, ast.stmt)],
                            into_free,
                        )
                for handler in getattr(stmt, "handlers", []) or []:
                    _walk(handler.body, into_free)

    _walk(module.tree.body, True)
    scopes.append(("module scope", free))
    return scopes


def check_buffer_protocols(module: ParsedModule) -> List[CheckFinding]:
    """VIS210/VIS211 over every class scope of one module."""
    findings: List[CheckFinding] = []
    for scope_name, functions in _scope_functions(module):
        scope = _ScopeUse(name=scope_name)
        for fn in functions:
            aliases = _local_aliases(fn)
            collector = _ProtocolCollector(scope, aliases)
            for stmt in fn.body:  # type: ignore[attr-defined]
                collector.visit(stmt)
        findings.extend(
            _check_pairing(
                module,
                scope,
                scope.reserve_sources,
                scope.reserve_discharges,
                "VIS210",
                "a buffer credit",
                "commit()/cancel()/release_credit()",
            )
        )
        findings.extend(
            _check_pairing(
                module,
                scope,
                scope.claim_sources,
                scope.claim_discharges,
                "VIS211",
                "a cache claim",
                "publish()/abandon()",
                require_all=("publish", "abandon"),
            )
        )
    return findings


# -- VIS212: connection lifecycle -------------------------------------


def _dotted(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(aliases.get(node.id, node.id))
        return ".".join(reversed(parts))
    return None


def _import_aliases(module: ParsedModule) -> Dict[str, str]:
    aliases: Dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def _is_conn_open(node: ast.AST, imports: Dict[str, str]) -> bool:
    if not isinstance(node, ast.Call):
        return False
    dotted = _dotted(node.func, imports)
    if dotted in _CONN_OPEN_DOTTED:
        return True
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in _CONN_OPEN_METHODS
    )


def check_connections(module: ParsedModule) -> List[CheckFinding]:
    """VIS212: locally-bound connections must close or escape."""
    findings: List[CheckFinding] = []
    imports = _import_aliases(module)
    functions = [
        node
        for node in ast.walk(module.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for fn in functions:
        opens: Dict[str, ast.AST] = {}
        closed: Set[str] = set()
        escaped: Set[str] = set()
        own_statements = [
            n
            for n in ast.walk(fn)
            if not isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            or n is fn
        ]
        for node in own_statements:
            if isinstance(node, ast.Assign) and _is_conn_open(
                node.value, imports
            ):
                for target in node.targets:
                    names = [target]
                    if isinstance(target, (ast.Tuple, ast.List)):
                        # ``conn, addr = sock.accept()``: only the
                        # first element is the connection.
                        names = list(target.elts[:1])
                    for name in names:
                        if isinstance(name, ast.Name):
                            opens.setdefault(name.id, node.value)
                        else:
                            # stored straight into an attribute or
                            # container: closed elsewhere by design
                            pass
            elif isinstance(node, ast.With):
                for item in node.items:
                    if _is_conn_open(item.context_expr, imports):
                        # ``with`` guarantees the close
                        if isinstance(item.optional_vars, ast.Name):
                            closed.add(item.optional_vars.id)
                    if isinstance(item.context_expr, ast.Name):
                        closed.add(item.context_expr.id)
        if not opens:
            continue
        for node in own_statements:
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.attr in _CONN_CLOSE_METHODS
                ):
                    closed.add(func.value.id)
                for arg in list(node.args) + [
                    kw.value for kw in node.keywords
                ]:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Name) and sub.id in opens:
                            escaped.add(sub.id)
            elif isinstance(node, (ast.Return, ast.Yield)):
                if node.value is not None:
                    for sub in ast.walk(node.value):
                        if isinstance(sub, ast.Name) and sub.id in opens:
                            escaped.add(sub.id)
            elif isinstance(node, ast.Assign):
                target_escape = any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in node.targets
                )
                if target_escape:
                    for sub in ast.walk(node.value):
                        if isinstance(sub, ast.Name) and sub.id in opens:
                            escaped.add(sub.id)
        for name, open_node in opens.items():
            if name in closed or name in escaped:
                continue
            findings.append(
                CheckFinding(
                    path=module.path,
                    line=open_node.lineno,
                    col=open_node.col_offset + 1,
                    code="VIS212",
                    message=(
                        f"connection {name!r} opened in {fn.name}() is "
                        "never closed, stored or handed off; it leaks "
                        "on every path"
                    ),
                )
            )
    return findings


# -- VIS213: MsgType decoder exhaustiveness ---------------------------


def _enum_members(
    module: ParsedModule,
) -> List[Tuple[str, int, int]]:
    """(name, line, col) of each ``MsgType`` member in this module."""
    members: List[Tuple[str, int, int]] = []
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.ClassDef) and node.name == "MsgType"):
            continue
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        members.append(
                            (target.id, stmt.lineno, stmt.col_offset + 1)
                        )
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                members.append(
                    (stmt.target.id, stmt.lineno, stmt.col_offset + 1)
                )
    return members


def _registry_handled(module: ParsedModule) -> Optional[Set[str]]:
    """MsgType members appearing in this module's ``_TYPE_OF`` registry.

    Returns None when the module defines no registry.
    """
    handled: Optional[Set[str]] = None
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "_TYPE_OF"
            for t in node.targets
        ):
            continue
        handled = set()
        for sub in ast.walk(node.value):
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "MsgType"
            ):
                handled.add(sub.attr)
    return handled


def check_protocol_registry(
    modules: Sequence[ParsedModule],
) -> List[CheckFinding]:
    """VIS213 across the checked tree.

    Fires only when both halves are visible: a module defining the
    ``MsgType`` enum and a module defining the ``_TYPE_OF`` decoder
    registry.  A member with no registry entry (and no allow pragma on
    its definition line) has no decoder branch -- the exact state a
    newly added message type starts in.
    """
    enum_sites: List[Tuple[ParsedModule, str, int, int]] = []
    handled: Optional[Set[str]] = None
    for module in modules:
        for name, line, col in _enum_members(module):
            enum_sites.append((module, name, line, col))
        module_handled = _registry_handled(module)
        if module_handled is not None:
            handled = (handled or set()) | module_handled
    if not enum_sites or handled is None:
        return []
    findings: List[CheckFinding] = []
    for module, name, line, col in enum_sites:
        if name in handled:
            continue
        findings.append(
            CheckFinding(
                path=module.path,
                line=line,
                col=col,
                code="VIS213",
                message=(
                    f"MsgType.{name} has no decoder branch in the "
                    "protocol registry (_TYPE_OF); every wire type "
                    "needs a payload class or an allow pragma"
                ),
            )
        )
    return findings


def analyze_module(module: ParsedModule) -> List[CheckFinding]:
    """Run the per-module typestate rules (VIS210-VIS212)."""
    findings: List[CheckFinding] = []
    findings.extend(check_buffer_protocols(module))
    findings.extend(check_connections(module))
    return findings
