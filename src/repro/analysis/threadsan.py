"""Lockdep-style lock-order checking for the live (threaded) mode.

The live back end and viewer replace sim processes with real
``threading`` threads; the failure mode the DES sanitizer cannot see
there is a lock-order inversion (thread 1 takes A then B, thread 2
takes B then A). :func:`named_lock` gives each lock a *class name*
("viewer.state", "backend.axis", "scenegraph.scene"); while a
:class:`ThreadSanitizer` is enabled, every acquisition records an
ordering edge ``held -> acquired`` and an edge that closes a cycle is
reported as a ``lock-order`` finding -- at the first inverted
*acquisition order*, without needing the deadlock to actually strike.

Zero overhead when disabled: :func:`named_lock` returns a plain
``threading.Lock`` unless a sanitizer is active at creation time.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Finding, SanitizerReport


class ThreadSanitizer:
    """Observes named-lock acquisition order across live threads."""

    def __init__(self) -> None:
        self.findings: List[Finding] = []
        self._mutex = threading.Lock()
        #: ordering edges: lock class -> classes acquired while held
        self._edges: Dict[str, Set[str]] = {}
        self._reported: Set[Tuple[str, str]] = set()
        self._held = threading.local()

    def _stack(self) -> List[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def _reaches(self, start: str, goal: str) -> bool:
        """True when ``goal`` is reachable from ``start`` in the graph."""
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            if node == goal:
                return True
            for nxt in self._edges.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    # -- hooks ---------------------------------------------------------
    def on_acquire(self, name: str) -> None:
        """About to acquire a lock of class ``name``."""
        stack = self._stack()
        with self._mutex:
            for held in stack:
                if held == name:
                    continue  # re-entrant acquisition of the same class
                if self._reaches(name, held):
                    pair = tuple(sorted((held, name)))
                    if pair not in self._reported:
                        self._reported.add(pair)
                        self.findings.append(
                            Finding(
                                "lock-order",
                                f"locks:{pair[0]}<->{pair[1]}",
                                f"inverted order: {name} taken while "
                                f"holding {held}, but {held} is also "
                                f"taken while (transitively) holding "
                                f"{name}",
                            )
                        )
                else:
                    self._edges.setdefault(held, set()).add(name)
        stack.append(name)

    def on_release(self, name: str) -> None:
        """Released a lock of class ``name``."""
        stack = self._stack()
        if name in stack:
            # Remove the innermost occurrence: releases may not be
            # perfectly LIFO (e.g. hand-over-hand locking).
            for i in range(len(stack) - 1, -1, -1):
                if stack[i] == name:
                    del stack[i]
                    break

    # -- reporting -----------------------------------------------------
    def report(self) -> SanitizerReport:
        """The lock-order findings collected so far."""
        with self._mutex:
            return SanitizerReport(findings=list(self.findings))


_ACTIVE: Optional[ThreadSanitizer] = None


def enable_thread_sanitizer() -> ThreadSanitizer:
    """Activate (and return) the process-wide thread sanitizer."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = ThreadSanitizer()
    return _ACTIVE


def disable_thread_sanitizer() -> None:
    """Deactivate the process-wide thread sanitizer."""
    global _ACTIVE
    _ACTIVE = None


def thread_sanitizer() -> Optional[ThreadSanitizer]:
    """The active sanitizer, or ``None`` when disabled."""
    return _ACTIVE


class TrackedLock:
    """A ``threading.Lock`` that reports its class to the sanitizer.

    Acquisition order is recorded *before* blocking, so an inversion
    is flagged even when the schedule happens not to deadlock.
    """

    def __init__(self, name: str, sanitizer: ThreadSanitizer):
        self.name = name
        self._sanitizer = sanitizer
        self._lock = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._sanitizer.on_acquire(self.name)
        ok = self._lock.acquire(blocking, timeout)
        if not ok:
            self._sanitizer.on_release(self.name)
        return ok

    def release(self) -> None:
        self._lock.release()
        self._sanitizer.on_release(self.name)

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()


def named_lock(name: str):
    """A mutex carrying the lock-class ``name`` for order checking.

    Returns a raw ``threading.Lock`` when no thread sanitizer is
    active at creation time -- the instrumented path costs nothing in
    production use.
    """
    sanitizer = thread_sanitizer()
    if sanitizer is None:
        return threading.Lock()
    return TrackedLock(name, sanitizer)
