"""Setuptools shim.

Kept alongside pyproject.toml so that ``pip install -e .`` works in
offline environments whose pip cannot build PEP-660 editable wheels
(no ``wheel`` package available); pip falls back to the legacy
``setup.py develop`` path.
"""

from setuptools import setup

setup()
